module Netlist = Shell_netlist.Netlist
module Simw = Shell_netlist.Simw
module Locked = Shell_locking.Locked
module Rng = Shell_util.Rng

let max_key_bits = 20

let now = Shell_util.Clock.now

(* Split vectors into word-sized groups: (lanes, packed input words). *)
let chunks_of_vecs vecs =
  let n = Array.length vecs in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let lanes = min Simw.width (n - pos) in
      let chunk = Array.sub vecs pos lanes in
      go (pos + lanes) ((lanes, Simw.pack chunk) :: acc)
  in
  go 0 []

let sample_vectors ~n_in ~vectors ~seed =
  if n_in <= 12 then
    Array.init (1 lsl n_in) (fun v ->
        Array.init n_in (fun i -> v land (1 lsl i) <> 0))
  else begin
    let rng = Rng.create seed in
    let vecs = Array.make (max 1 vectors) [||] in
    for i = 0 to Array.length vecs - 1 do
      vecs.(i) <- Array.init n_in (fun _ -> Rng.bool rng)
    done;
    vecs
  end

let attack =
  {
    Attack.name = "brute";
    description =
      Printf.sprintf
        "word-parallel exhaustive key sweep (keys of <= %d bits)" max_key_bits;
    capabilities = [ Attack.Oracle_access ];
    run =
      (fun (b : Attack.budget) (s : Attack.subject) ->
        let lk = s.Attack.locked in
        let nl = lk.Locked.locked in
        let k = Locked.key_bits lk in
        if k = 0 then Attack.Inapplicable "no key bits"
        else if k > max_key_bits then
          Attack.Inapplicable
            (Printf.sprintf "%d key bits (> %d)" k max_key_bits)
        else if Netlist.has_comb_cycle nl then
          Attack.Inapplicable "cyclic locked netlist"
        else begin
          let start = now () in
          let comb = Netlist.comb_view nl in
          let simw = Simw.create comb in
          let n_in = List.length (Netlist.inputs comb) in
          let vecs =
            sample_vectors ~n_in ~vectors:b.Attack.vectors ~seed:0xb407e
          in
          (* activated-chip responses, computed once up front *)
          let oracle_w = Attack.word_oracle s in
          let chunks =
            List.map
              (fun (lanes, ins) -> (lanes, ins, oracle_w ~lanes ins))
              (chunks_of_vecs vecs)
          in
          let tried = ref 0 in
          let found = ref None in
          let budget_out = ref false in
          let key = Array.make k false in
          let total = 1 lsl k in
          let v = ref 0 in
          while !found = None && (not !budget_out) && !v < total do
            (* keep budget polls off the per-candidate hot path *)
            if
              !v land 255 = 0
              && (b.Attack.should_stop ()
                 || now () -. start > b.Attack.time_limit)
            then budget_out := true
            else begin
              for i = 0 to k - 1 do
                key.(i) <- !v land (1 lsl i) <> 0
              done;
              incr tried;
              (* wrong keys almost always die on the first chunk, so the
                 sweep costs ~one word-level pass per candidate *)
              let matches =
                List.for_all
                  (fun (lanes, ins, theirs) ->
                    let mine = Simw.eval_comb simw ~keys:key ~lanes ins in
                    let diff = ref 0 in
                    Array.iteri
                      (fun i w -> diff := !diff lor (w lxor theirs.(i)))
                      mine;
                    !diff = 0)
                  chunks
              in
              if matches then found := Some (Array.copy key);
              incr v
            end
          done;
          let stats =
            {
              Attack.iterations = !tried;
              oracle_queries = Array.length vecs;
              conflicts = 0;
              elapsed = now () -. start;
              key_bits = k;
              recovered_bits = 0;
              detail =
                [ ("candidates", !tried); ("vectors", Array.length vecs) ];
            }
          in
          match !found with
          | Some key -> Attack.checked_broken s key stats
          | None -> Attack.Resilient stats
        end);
  }
