(** Structural key-cone attack.

    Pure dataflow, no oracle: reuses the lint core's constant
    propagation and output-cone machinery
    ({!Shell_lint.Dataflow.key_fates}). A key bit that is [Dead]
    (reaches no output) or [Blocked] (every path cut by a proven
    constant) provably cannot affect the function — those bits come for
    free. When {e every} bit is free the scheme is broken outright: any
    key unlocks the design (the all-false claim is still verified
    through {!Attack.checked_broken} before being reported).

    This is the attack the [key-dead]/[key-blocked] lint rules warn
    defenders about, run from the attacker's side. *)

val attack : Attack.t
(** Registered as ["structural"]. [recovered_bits] counts the free
    bits; [detail] carries the dead/blocked/live breakdown. Budget
    knobs are ignored (one dataflow sweep). *)
