(** SCOPE-style oracle-less attack: unsupervised constant-propagation
    key guessing.

    Each key bit is scored by {!Shell_lint.Scope} — re-running the
    3-valued constant propagation with the bit pinned each way and
    counting the nets each pinning newly proves constant. The
    less-collapsing value is guessed as correct (wrong values
    degenerate the locking gates into constants); ties are
    undecidable. The assembled key (undecided bits default to 0) is
    verified word-parallel through {!Attack.checked_broken}, i.e.
    [Locked.verify] on the 63-lane [Simw] engine, before any break is
    claimed. When every bit ties the verdict is [Resilient]:
    symmetric locking (XOR gates, balanced mux routing) is SCOPE's
    documented blind spot.

    This is the attack the [scope-leak] lint rule warns defenders
    about, run from the attacker's side. *)

val attack : Attack.t
(** Registered as ["scope"]. [recovered_bits] counts the decided bits;
    [detail] carries the decided/undecided split and the maximum
    divergence seen. Budget knobs are ignored (two incremental
    propagations per bit). *)
