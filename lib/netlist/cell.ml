module Truthtab = Shell_util.Truthtab

type kind =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux2
  | Mux4
  | Lut of Truthtab.t
  | Const of bool
  | Dff
  | Config_latch

type t = { kind : kind; ins : int array; out : int; origin : string }

let arity = function
  | And | Or | Nand | Nor | Xor | Xnor -> 2
  | Not | Buf -> 1
  | Mux2 -> 3
  | Mux4 -> 6
  | Lut tt -> Truthtab.arity tt
  | Const _ -> 0
  | Dff | Config_latch -> 1

let is_sequential = function
  | Dff | Config_latch -> true
  | And | Or | Nand | Nor | Xor | Xnor | Not | Buf | Mux2 | Mux4 | Lut _
  | Const _ -> false

let make ?(origin = "") kind ins out =
  if Array.length ins <> arity kind then
    invalid_arg
      (Printf.sprintf "Cell.make: %d inputs where %d expected"
         (Array.length ins) (arity kind));
  { kind; ins; out; origin }

let kind_name = function
  | And -> "and2"
  | Or -> "or2"
  | Nand -> "nand2"
  | Nor -> "nor2"
  | Xor -> "xor2"
  | Xnor -> "xnor2"
  | Not -> "not"
  | Buf -> "buf"
  | Mux2 -> "mux2"
  | Mux4 -> "mux4"
  | Lut tt -> Printf.sprintf "lut%d:%Lx" (Truthtab.arity tt) (Truthtab.bits tt)
  | Const b -> if b then "const1" else "const0"
  | Dff -> "dff"
  | Config_latch -> "cfg_latch"

let eval kind ins =
  match kind with
  | And -> ins.(0) && ins.(1)
  | Or -> ins.(0) || ins.(1)
  | Nand -> not (ins.(0) && ins.(1))
  | Nor -> not (ins.(0) || ins.(1))
  | Xor -> ins.(0) <> ins.(1)
  | Xnor -> ins.(0) = ins.(1)
  | Not -> not ins.(0)
  | Buf -> ins.(0)
  | Mux2 -> if ins.(0) then ins.(2) else ins.(1)
  | Mux4 ->
      let sel = (if ins.(0) then 1 else 0) lor (if ins.(1) then 2 else 0) in
      ins.(2 + sel)
  | Lut tt -> Truthtab.eval tt ins
  | Const b -> b
  | Dff | Config_latch -> invalid_arg "Cell.eval: sequential cell"

(* Allocation-free variant for the simulator hot loop: read operand
   values straight out of the net store instead of materializing an
   input array per evaluation. *)
let eval_in kind (nets : bool array) (ins : int array) =
  match kind with
  | And -> nets.(ins.(0)) && nets.(ins.(1))
  | Or -> nets.(ins.(0)) || nets.(ins.(1))
  | Nand -> not (nets.(ins.(0)) && nets.(ins.(1)))
  | Nor -> not (nets.(ins.(0)) || nets.(ins.(1)))
  | Xor -> nets.(ins.(0)) <> nets.(ins.(1))
  | Xnor -> nets.(ins.(0)) = nets.(ins.(1))
  | Not -> not nets.(ins.(0))
  | Buf -> nets.(ins.(0))
  | Mux2 -> if nets.(ins.(0)) then nets.(ins.(2)) else nets.(ins.(1))
  | Mux4 ->
      let sel =
        (if nets.(ins.(0)) then 1 else 0) lor (if nets.(ins.(1)) then 2 else 0)
      in
      nets.(ins.(2 + sel))
  | Lut tt ->
      let row = ref 0 in
      for i = 0 to Array.length ins - 1 do
        if nets.(ins.(i)) then row := !row lor (1 lsl i)
      done;
      Truthtab.eval_row tt !row
  | Const b -> b
  | Dff | Config_latch -> invalid_arg "Cell.eval: sequential cell"

(* Word-level LUT evaluation by Shannon expansion over the top
   variable: eval(tt, x) = (s & eval(hi)) | (~s & eval(lo)) with lo/hi
   the two halves of the table, 2^arity - 1 word ops in total. The
   table bits are carried as a native int to keep Int64 values from
   boxing in the recursion; an arity-6 table (64 rows) is split once at
   the top level into two 32-row native halves. *)
let rec lut_word_go bits arity (nets : int array) (ins : int array) =
  if arity = 0 then -(bits land 1) (* broadcast row bit: 0 or all-ones *)
  else
    let a = arity - 1 in
    let lo = lut_word_go bits a nets ins in
    let hi = lut_word_go (bits lsr (1 lsl a)) a nets ins in
    let s = nets.(ins.(a)) in
    s land hi lor (lnot s land lo)

let lut_word tt (nets : int array) (ins : int array) =
  let arity = Truthtab.arity tt in
  let bits = Truthtab.bits tt in
  if arity < 6 then lut_word_go (Int64.to_int bits) arity nets ins
  else
    let lo = lut_word_go (Int64.to_int (Int64.logand bits 0xFFFFFFFFL)) 5 nets ins in
    let hi =
      lut_word_go (Int64.to_int (Int64.shift_right_logical bits 32)) 5 nets ins
    in
    let s = nets.(ins.(5)) in
    s land hi lor (lnot s land lo)

(* Word-level cell function: each net value carries one test vector per
   bit. Lanes beyond the caller's active count may hold junk (lnot sets
   them); consumers mask at read-out boundaries. *)
let eval_word_in kind (nets : int array) (ins : int array) =
  match kind with
  | And -> nets.(ins.(0)) land nets.(ins.(1))
  | Or -> nets.(ins.(0)) lor nets.(ins.(1))
  | Nand -> lnot (nets.(ins.(0)) land nets.(ins.(1)))
  | Nor -> lnot (nets.(ins.(0)) lor nets.(ins.(1)))
  | Xor -> nets.(ins.(0)) lxor nets.(ins.(1))
  | Xnor -> lnot (nets.(ins.(0)) lxor nets.(ins.(1)))
  | Not -> lnot nets.(ins.(0))
  | Buf -> nets.(ins.(0))
  | Mux2 ->
      let s = nets.(ins.(0)) in
      lnot s land nets.(ins.(1)) lor (s land nets.(ins.(2)))
  | Mux4 ->
      let s0 = nets.(ins.(0)) and s1 = nets.(ins.(1)) in
      let lo = lnot s0 land nets.(ins.(2)) lor (s0 land nets.(ins.(3))) in
      let hi = lnot s0 land nets.(ins.(4)) lor (s0 land nets.(ins.(5))) in
      lnot s1 land lo lor (s1 land hi)
  | Lut tt -> lut_word tt nets ins
  | Const b -> if b then -1 else 0
  | Dff | Config_latch -> invalid_arg "Cell.eval_word: sequential cell"

let eval_word kind ws = eval_word_in kind ws (Array.init (Array.length ws) Fun.id)

let pp ppf t =
  Format.fprintf ppf "%s(%s) -> n%d" (kind_name t.kind)
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "n%d") t.ins)))
    t.out
