(* Word-level (bit-parallel) netlist simulation: one machine word per
   net, bit l carrying test vector l. Shares Sim's contract exactly —
   same topo order, same port loading, same Dff/Config_latch handling —
   so the two engines are drop-in interchangeable; Simw just evaluates
   up to [width] vectors per pass.

   Lane discipline: internal net words may carry junk in lanes >= the
   caller's active lane count (lnot turns masked-out zeros into ones).
   That junk is harmless — word ops are lane-wise — and is masked off
   only at read-out boundaries (read_outputs, net_values). Sequential
   state is per-lane: each Dff holds one word, lane l being the flop
   value of simulation instance l; Config_latch state is broadcast
   (0 / all-ones) because the bitstream is shared by every lane. *)

module Obs = Shell_util.Obs

type t = {
  netlist : Netlist.t;
  comb_order : int array;  (* topo order, sequential cells filtered out *)
  cells : Cell.t array;
  nets : int array;
  dff_state : int array;  (* indexed by position in [seq_cells]; per-lane *)
  seq_cells : int array;
  latch_state : int array;  (* broadcast words: 0 or all-ones *)
  latch_cells : int array;
}

let width = Sys.int_size

let lane_mask lanes =
  if lanes < 1 || lanes > width then invalid_arg "Simw: bad lane count"
  else if lanes = width then -1
  else (1 lsl lanes) - 1

let broadcast b = if b then -1 else 0

let create ?config netlist =
  let cells = Netlist.cells netlist in
  let order = Netlist.topo_order netlist in
  let seq = ref [] and latches = ref [] in
  Array.iteri
    (fun i c ->
      match c.Cell.kind with
      | Cell.Dff -> seq := i :: !seq
      | Cell.Config_latch -> latches := i :: !latches
      | _ -> ())
    cells;
  let seq_cells = Array.of_list (List.rev !seq) in
  let latch_cells = Array.of_list (List.rev !latches) in
  let latch_state =
    match config with
    | None -> Array.make (Array.length latch_cells) 0
    | Some c ->
        if Array.length c <> Array.length latch_cells then
          invalid_arg "Simw.create: config length mismatch";
        Array.map broadcast c
  in
  let comb_order =
    Array.of_seq
      (Seq.filter
         (fun ci -> not (Cell.is_sequential cells.(ci).Cell.kind))
         (Array.to_seq order))
  in
  {
    netlist;
    comb_order;
    cells;
    nets = Array.make (max (Netlist.num_nets netlist) 1) 0;
    dff_state = Array.make (Array.length seq_cells) 0;
    seq_cells;
    latch_state;
    latch_cells;
  }

let netlist t = t.netlist

let reset t = Array.fill t.dff_state 0 (Array.length t.dff_state) 0

let load_ports t ?keys ins =
  let in_nets = Netlist.input_nets t.netlist in
  if Array.length ins <> Array.length in_nets then
    invalid_arg "Simw: input word count mismatch";
  Array.iteri (fun i net -> t.nets.(net) <- ins.(i)) in_nets;
  let key_nets = Netlist.key_nets t.netlist in
  match keys with
  | Some k ->
      if Array.length k <> Array.length key_nets then
        invalid_arg "Simw: key vector length mismatch";
      Array.iteri (fun i net -> t.nets.(net) <- broadcast k.(i)) key_nets
  | None -> Array.iter (fun net -> t.nets.(net) <- 0) key_nets

let propagate t lanes =
  Array.iteri
    (fun i ci -> t.nets.(t.cells.(ci).Cell.out) <- t.dff_state.(i))
    t.seq_cells;
  Array.iteri
    (fun i ci -> t.nets.(t.cells.(ci).Cell.out) <- t.latch_state.(i))
    t.latch_cells;
  let nets = t.nets and cells = t.cells in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      nets.(c.Cell.out) <- Cell.eval_word_in c.Cell.kind nets c.Cell.ins)
    t.comb_order;
  Obs.incr Sim_obs.words;
  Obs.add Sim_obs.vectors lanes;
  Obs.add Sim_obs.cells (Array.length t.comb_order)

let read_outputs t ~lanes =
  let m = lane_mask lanes in
  Array.map (fun net -> t.nets.(net) land m) (Netlist.output_nets t.netlist)

let eval_comb t ?keys ?(lanes = width) ins =
  let _ = lane_mask lanes in
  (* validate *)
  load_ports t ?keys ins;
  propagate t lanes;
  read_outputs t ~lanes

let step t ?keys ?(lanes = width) ins =
  let outs = eval_comb t ?keys ~lanes ins in
  Array.iteri
    (fun i ci -> t.dff_state.(i) <- t.nets.(t.cells.(ci).Cell.ins.(0)))
    t.seq_cells;
  outs

let net_values t ~lanes =
  let m = lane_mask lanes in
  Array.map (fun w -> w land m) t.nets

let num_config_latches = Sim.num_config_latches

(* ---------------- packing helpers ---------------- *)

let pack vecs =
  let n = Array.length vecs in
  if n < 1 || n > width then invalid_arg "Simw.pack: bad vector count";
  let bits = Array.length vecs.(0) in
  let words = Array.make bits 0 in
  for l = 0 to n - 1 do
    let v = vecs.(l) in
    if Array.length v <> bits then invalid_arg "Simw.pack: ragged vectors";
    for i = 0 to bits - 1 do
      if v.(i) then words.(i) <- words.(i) lor (1 lsl l)
    done
  done;
  words

let lane words l =
  if l < 0 || l >= width then invalid_arg "Simw.lane: bad lane";
  Array.map (fun w -> (w lsr l) land 1 = 1) words

let first_lane w =
  if w = 0 then invalid_arg "Simw.first_lane: zero word";
  let rec go w i = if w land 1 = 1 then i else go (w lsr 1) (i + 1) in
  go w 0
