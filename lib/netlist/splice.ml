let replace_cells parent ~remove ~replacement ~input_binding ~output_binding =
  let out = Netlist.create (Netlist.name parent) in
  let pmap = Array.make (max (Netlist.num_nets parent) 1) (-1) in
  List.iter
    (fun (nm, net) -> pmap.(net) <- Netlist.add_input out nm)
    (Netlist.inputs parent);
  List.iter
    (fun (nm, net) -> pmap.(net) <- Netlist.add_key out nm)
    (Netlist.keys parent);
  (* lift the replacement's keys *)
  let rmap = Array.make (max (Netlist.num_nets replacement) 1) (-1) in
  List.iter
    (fun (nm, net) -> rmap.(net) <- Netlist.add_key out nm)
    (Netlist.keys replacement);
  let map_parent net =
    if pmap.(net) = -1 then pmap.(net) <- Netlist.new_net out;
    pmap.(net)
  in
  let map_repl net =
    if rmap.(net) = -1 then rmap.(net) <- Netlist.new_net out;
    rmap.(net)
  in
  (* bind replacement inputs onto parent nets: identify the nets *)
  List.iter
    (fun (port, parent_net) ->
      match List.assoc_opt port (Netlist.inputs replacement) with
      | None -> invalid_arg ("Splice: replacement has no input " ^ port)
      | Some rnet ->
          if rmap.(rnet) <> -1 then invalid_arg ("Splice: input bound twice: " ^ port);
          rmap.(rnet) <- map_parent parent_net)
    input_binding;
  (* every replacement input must be bound *)
  List.iter
    (fun (nm, rnet) ->
      if rmap.(rnet) = -1 then
        invalid_arg ("Splice: replacement input unbound: " ^ nm))
    (Netlist.inputs replacement);
  (* surviving parent cells *)
  Array.iteri
    (fun i c ->
      if not (remove i) then
        Netlist.add_cell out
          (Cell.make ~origin:c.Cell.origin c.Cell.kind
             (Array.map map_parent c.Cell.ins)
             (map_parent c.Cell.out)))
    (Netlist.cells parent);
  (* replacement cells *)
  Array.iter
    (fun c ->
      Netlist.add_cell out
        (Cell.make ~origin:c.Cell.origin c.Cell.kind
           (Array.map map_repl c.Cell.ins)
           (map_repl c.Cell.out)))
    (Netlist.cells replacement);
  (* replacement outputs drive the orphaned parent nets via buffers *)
  List.iter
    (fun (port, parent_net) ->
      match List.assoc_opt port (Netlist.outputs replacement) with
      | None -> invalid_arg ("Splice: replacement has no output " ^ port)
      | Some rnet ->
          Netlist.add_cell out
            (Cell.make ~origin:"splice" Cell.Buf
               [| map_repl rnet |]
               (map_parent parent_net)))
    output_binding;
  List.iter
    (fun (nm, net) -> Netlist.add_output out nm (map_parent net))
    (Netlist.outputs parent);
  match Netlist.validate out with
  | Ok () -> Rewrite.sweep_buffers out
  | Error d ->
      raise
        (Shell_util.Diag.Error
           { d with Shell_util.Diag.context = "Splice" :: d.Shell_util.Diag.context })
