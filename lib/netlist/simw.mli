(** Bit-parallel (word-level) netlist simulation.

    One machine word per net, bit [l] carrying test vector [l]: one
    pass over the combinational cone evaluates up to {!width} vectors.
    The engine mirrors {!Sim}'s contract — same topological order,
    same port-loading rules, same [Dff]/[Config_latch] machinery — so
    the two are drop-in interchangeable and must agree bit for bit
    (enforced by the [simw_vs_sim] fuzz oracle).

    Keys and config bits are shared by every lane (broadcast words);
    [Dff] state is per-lane, so [lanes] parallel sequential runs
    evolve independently. Output and net read-outs are masked to the
    active lane count; internal nets may carry junk in higher lanes. *)

type t

val width : int
(** Vectors per word: [Sys.int_size] (63 on 64-bit OCaml — the OCaml
    native int has 63 value bits, so "64-wide" batches span 2 words). *)

val create : ?config:bool array -> Netlist.t -> t
(** [config] gives per-[Config_latch] values in cell order, as in
    {!Sim.create}; each is broadcast to every lane. *)

val netlist : t -> Netlist.t

val reset : t -> unit
(** Zero all [Dff] state in every lane. *)

val eval_comb : t -> ?keys:bool array -> ?lanes:int -> int array -> int array
(** [eval_comb t ~keys ~lanes ins] evaluates the combinational cone on
    [ins] (one word per primary input, declaration order) and returns
    one word per primary output, masked to [lanes] (default {!width},
    must be in \[1, width\]). [keys] (scalar, broadcast to all lanes)
    defaults to all-false and must match the key count. *)

val step : t -> ?keys:bool array -> ?lanes:int -> int array -> int array
(** {!eval_comb} plus the per-lane flop update: lane [l] of every
    [Dff] latches lane [l] of its data input. *)

val net_values : t -> lanes:int -> int array
(** All net words after the last evaluation, masked to [lanes]. *)

val num_config_latches : Netlist.t -> int

(** {1 Packing helpers} *)

val pack : bool array array -> int array
(** [pack vecs] packs 1..{!width} equal-length vectors into words: bit
    [l] of word [i] is [vecs.(l).(i)]. *)

val lane : int array -> int -> bool array
(** [lane words l] extracts vector [l]: [(lane (pack vecs) l) = vecs.(l)]. *)

val first_lane : int -> int
(** Index of the lowest set bit of a non-zero word — the earliest lane
    (in vector order) a miscompare word flags. *)
