module Vec = Shell_util.Vec
module Truthtab = Shell_util.Truthtab
module Diag = Shell_util.Diag

type t = {
  name : string;
  mutable n_nets : int;
  mutable inputs : (string * int) list;  (* reversed; see accessors *)
  mutable outputs : (string * int) list;
  mutable keys : (string * int) list;
  cells : Cell.t Vec.t;
  (* caches, invalidated on mutation *)
  mutable driver_cache : int array option;  (* net -> cell index or -1 *)
  mutable fanout_cache : int list array option;
}

let create name =
  {
    name;
    n_nets = 0;
    inputs = [];
    outputs = [];
    keys = [];
    cells = Vec.create ();
    driver_cache = None;
    fanout_cache = None;
  }

let name t = t.name

let invalidate t =
  t.driver_cache <- None;
  t.fanout_cache <- None

let new_net t =
  let id = t.n_nets in
  t.n_nets <- id + 1;
  id

type invalid =
  | Bad_net_id of { port : string; net : int }
  | Duplicate_port of { port : string }
  | Multiple_drivers of { net : int; drivers : int }
  | Undriven_output of { port : string; net : int }
  | Undriven_read of { net : int }

type Diag.payload += Invalid of invalid

let () =
  Diag.register_printer (function
    | Invalid (Bad_net_id { port; net }) ->
        Some (Printf.sprintf "bad-net-id port=%s net=%d" port net)
    | Invalid (Duplicate_port { port }) ->
        Some (Printf.sprintf "duplicate-port %s" port)
    | Invalid (Multiple_drivers { net; drivers }) ->
        Some (Printf.sprintf "multiple-drivers net=%d drivers=%d" net drivers)
    | Invalid (Undriven_output { port; net }) ->
        Some (Printf.sprintf "undriven-output port=%s net=%d" port net)
    | Invalid (Undriven_read { net }) ->
        Some (Printf.sprintf "undriven-read net=%d" net)
    | _ -> None)

let add_input t nm =
  let net = new_net t in
  t.inputs <- (nm, net) :: t.inputs;
  net

let add_key t nm =
  let net = new_net t in
  t.keys <- (nm, net) :: t.keys;
  net

let add_output t nm net =
  if net < 0 || net >= t.n_nets then
    Diag.failf
      ~payload:(Invalid (Bad_net_id { port = nm; net }))
      "Netlist.add_output: port %s names net %d outside [0, %d)" nm net
      t.n_nets;
  t.outputs <- (nm, net) :: t.outputs

let add_cell t c =
  let check n = if n < 0 || n >= t.n_nets then invalid_arg "Netlist.add_cell: bad net" in
  Array.iter check c.Cell.ins;
  check c.Cell.out;
  Vec.push t.cells c;
  invalidate t

let set_origin t i origin =
  let c = Vec.get t.cells i in
  Vec.set t.cells i { c with Cell.origin }

let gate ?(origin = "") t kind ins =
  let out = new_net t in
  add_cell t (Cell.make ~origin kind ins out);
  out

let and_ ?origin t a b = gate ?origin t Cell.And [| a; b |]
let or_ ?origin t a b = gate ?origin t Cell.Or [| a; b |]
let nand_ ?origin t a b = gate ?origin t Cell.Nand [| a; b |]
let nor_ ?origin t a b = gate ?origin t Cell.Nor [| a; b |]
let xor_ ?origin t a b = gate ?origin t Cell.Xor [| a; b |]
let xnor_ ?origin t a b = gate ?origin t Cell.Xnor [| a; b |]
let not_ ?origin t a = gate ?origin t Cell.Not [| a |]
let buf ?origin t a = gate ?origin t Cell.Buf [| a |]
let mux2 ?origin t ~sel ~a ~b = gate ?origin t Cell.Mux2 [| sel; a; b |]

let mux4 ?origin t ~s0 ~s1 data =
  if Array.length data <> 4 then invalid_arg "Netlist.mux4: need 4 data nets";
  gate ?origin t Cell.Mux4 [| s0; s1; data.(0); data.(1); data.(2); data.(3) |]

let lut ?origin t tt ins = gate ?origin t (Cell.Lut tt) ins
let const ?origin t b = gate ?origin t (Cell.Const b) [||]
let dff ?origin t d = gate ?origin t Cell.Dff [| d |]

let num_nets t = t.n_nets
let num_cells t = Vec.length t.cells
let cells t = Vec.to_array t.cells
let cell t i = Vec.get t.cells i
let inputs t = List.rev t.inputs
let outputs t = List.rev t.outputs
let keys t = List.rev t.keys
let input_nets t = Array.of_list (List.map snd (inputs t))
let output_nets t = Array.of_list (List.map snd (outputs t))
let key_nets t = Array.of_list (List.map snd (keys t))

let driver_table t =
  match t.driver_cache with
  | Some d -> d
  | None ->
      let d = Array.make (max t.n_nets 1) (-1) in
      Vec.iteri (fun i c -> d.(c.Cell.out) <- i) t.cells;
      t.driver_cache <- Some d;
      d

let driver t net =
  let d = driver_table t in
  if net < 0 || net >= t.n_nets then None
  else match d.(net) with -1 -> None | i -> Some i

let fanout_table t =
  match t.fanout_cache with
  | Some f -> f
  | None ->
      let f = Array.make (max t.n_nets 1) [] in
      Vec.iteri
        (fun i c -> Array.iter (fun n -> f.(n) <- i :: f.(n)) c.Cell.ins)
        t.cells;
      t.fanout_cache <- Some f;
      f

let fanout t net =
  let f = fanout_table t in
  if net < 0 || net >= t.n_nets then [] else List.rev f.(net)

let copy t =
  {
    t with
    cells = Vec.of_array (Vec.to_array t.cells);
    driver_cache = None;
    fanout_cache = None;
  }

let map_cells t f =
  let t' = copy t in
  Vec.iteri (fun i c -> Vec.set t'.cells i (f i c)) t'.cells;
  t'

let filter_outputs t p =
  let t' = copy t in
  t'.outputs <- List.filter (fun (nm, _) -> p nm) t'.outputs;
  t'

let validate_all t =
  let errs = ref [] in
  let report payload fmt =
    Printf.ksprintf
      (fun m ->
        errs := Diag.make ~context:[ "validate"; t.name ] ~payload m :: !errs)
      fmt
  in
  (* port sanity: every port names an in-range net, names are unique
     within their class *)
  let seen = Hashtbl.create 16 in
  let check_port cls (nm, net) =
    if net < 0 || net >= t.n_nets then
      report (Invalid (Bad_net_id { port = nm; net }))
        "%s port %s names net n%d outside [0, %d)" cls nm net t.n_nets
    else if Hashtbl.mem seen (cls, nm) then
      report (Invalid (Duplicate_port { port = nm }))
        "duplicate %s port name %s" cls nm
    else Hashtbl.add seen (cls, nm) ()
  in
  List.iter (check_port "input") (List.rev t.inputs);
  List.iter (check_port "key") (List.rev t.keys);
  List.iter (check_port "output") (List.rev t.outputs);
  let drivers = Array.make (max t.n_nets 1) 0 in
  let mark net =
    if net >= 0 && net < t.n_nets then drivers.(net) <- drivers.(net) + 1
  in
  List.iter (fun (_, n) -> mark n) t.inputs;
  List.iter (fun (_, n) -> mark n) t.keys;
  Vec.iter (fun c -> mark c.Cell.out) t.cells;
  for net = 0 to t.n_nets - 1 do
    if drivers.(net) > 1 then
      report
        (Invalid (Multiple_drivers { net; drivers = drivers.(net) }))
        "net n%d has %d drivers" net drivers.(net)
  done;
  (* a dangling output is reported by port name, not just as a
     floating read *)
  List.iter
    (fun (nm, net) ->
      if net >= 0 && net < t.n_nets && drivers.(net) = 0 then
        report (Invalid (Undriven_output { port = nm; net }))
          "output %s reads undriven net n%d" nm net)
    (List.rev t.outputs);
  (* other floating nets are only an error when something reads them *)
  let reads = Array.make (max t.n_nets 1) false in
  Vec.iter
    (fun c -> Array.iter (fun n -> reads.(n) <- true) c.Cell.ins)
    t.cells;
  for net = 0 to t.n_nets - 1 do
    if reads.(net) && drivers.(net) = 0 then
      report (Invalid (Undriven_read { net }))
        "net n%d is read but never driven" net
  done;
  List.rev !errs

let validate t =
  match validate_all t with [] -> Ok () | d :: _ -> Error d

(* Structural fingerprint (FNV-1a over the whole construction) for the
   pass pipeline's input keys: two netlists with equal fingerprints are
   treated as the same pass input. Cheap — one linear scan, no
   allocation beyond the fold state. *)
let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let mix i = h := Int64.mul (Int64.logxor !h (Int64.of_int i)) prime in
  let mix_str s =
    String.iter (fun c -> mix (Char.code c)) s;
    mix 0x11f
  in
  let mix_ports l =
    List.iter
      (fun (nm, net) ->
        mix_str nm;
        mix net)
      l
  in
  mix_str t.name;
  mix t.n_nets;
  mix_ports (List.rev t.inputs);
  mix 0x21;
  mix_ports (List.rev t.keys);
  mix 0x22;
  mix_ports (List.rev t.outputs);
  mix 0x23;
  Vec.iter
    (fun c ->
      (match c.Cell.kind with
      | Cell.And -> mix 1
      | Cell.Or -> mix 2
      | Cell.Nand -> mix 3
      | Cell.Nor -> mix 4
      | Cell.Xor -> mix 5
      | Cell.Xnor -> mix 6
      | Cell.Not -> mix 7
      | Cell.Buf -> mix 8
      | Cell.Mux2 -> mix 9
      | Cell.Mux4 -> mix 10
      | Cell.Lut tt ->
          mix 11;
          mix (Truthtab.arity tt);
          h := Int64.mul (Int64.logxor !h (Truthtab.bits tt)) prime
      | Cell.Const b -> mix (if b then 12 else 13)
      | Cell.Dff -> mix 14
      | Cell.Config_latch -> mix 15);
      Array.iter mix c.Cell.ins;
      mix c.Cell.out;
      mix_str c.Cell.origin)
    t.cells;
  Printf.sprintf "%016Lx" !h

(* Kahn's algorithm on the combinational dependency graph: an edge goes
   from the driver of each input net of a combinational cell to that
   cell. Sequential cells are sources (their output depends on the past
   only) but their inputs still have to be produced, so they appear in
   the order too, after their input cone. *)
let topo_order t =
  let n = num_cells t in
  let d = driver_table t in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  for i = 0 to n - 1 do
    let c = Vec.get t.cells i in
    if not (Cell.is_sequential c.Cell.kind) then
      Array.iter
        (fun net ->
          match d.(net) with
          | -1 -> ()
          | j ->
              let cj = Vec.get t.cells j in
              if not (Cell.is_sequential cj.Cell.kind) then begin
                indeg.(i) <- indeg.(i) + 1;
                succs.(j) <- i :: succs.(j)
              end)
        c.Cell.ins
  done;
  let queue = Queue.create () in
  (* Sequential cells go last; their combinational input cone is already
     ordered, and nothing combinational depends on ordering them early. *)
  for i = 0 to n - 1 do
    let c = Vec.get t.cells i in
    if (not (Cell.is_sequential c.Cell.kind)) && indeg.(i) = 0 then
      Queue.add i queue
  done;
  let order = Vec.create () in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    Vec.push order i;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  let n_comb = ref 0 in
  for i = 0 to n - 1 do
    if not (Cell.is_sequential (Vec.get t.cells i).Cell.kind) then incr n_comb
  done;
  if Vec.length order <> !n_comb then
    failwith "Netlist.topo_order: combinational cycle";
  for i = 0 to n - 1 do
    if Cell.is_sequential (Vec.get t.cells i).Cell.kind then Vec.push order i
  done;
  Vec.to_array order

let has_comb_cycle t =
  match topo_order t with _ -> false | exception Failure _ -> true

let comb_view t =
  let v = create (t.name ^ "_scan") in
  v.n_nets <- t.n_nets;
  v.inputs <- t.inputs;
  v.outputs <- t.outputs;
  v.keys <- t.keys;
  let k = ref 0 in
  Vec.iter
    (fun c ->
      match c.Cell.kind with
      | Cell.Dff ->
          let i = !k in
          incr k;
          (* The flop's q-net becomes a scan input; its d-net a scan
             output. The q-net already exists: declare it as an input. *)
          v.inputs <- (Printf.sprintf "scan_in_%d" i, c.Cell.out) :: v.inputs;
          v.outputs <-
            (Printf.sprintf "scan_out_%d" i, c.Cell.ins.(0)) :: v.outputs
      | Cell.And | Cell.Or | Cell.Nand | Cell.Nor | Cell.Xor | Cell.Xnor
      | Cell.Not | Cell.Buf | Cell.Mux2 | Cell.Mux4 | Cell.Lut _
      | Cell.Const _ | Cell.Config_latch ->
          Vec.push v.cells c)
    t.cells;
  v

let stats t =
  let tbl = Hashtbl.create 16 in
  Vec.iter
    (fun c ->
      (* Collapse LUT truth tables so the histogram groups by arity. *)
      let key =
        match c.Cell.kind with
        | Cell.Lut tt -> Printf.sprintf "lut%d" (Truthtab.arity tt)
        | k -> Cell.kind_name k
      in
      Hashtbl.replace tbl key (1 + try Hashtbl.find tbl key with Not_found -> 0))
    t.cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let count_kind t p =
  Vec.fold (fun acc c -> if p c.Cell.kind then acc + 1 else acc) 0 t.cells

let pp ppf t =
  Format.fprintf ppf "@[<v>module %s: %d nets, %d cells@," t.name t.n_nets
    (num_cells t);
  List.iter (fun (nm, n) -> Format.fprintf ppf "  input %s = n%d@," nm n) (inputs t);
  List.iter (fun (nm, n) -> Format.fprintf ppf "  key %s = n%d@," nm n) (keys t);
  List.iter (fun (nm, n) -> Format.fprintf ppf "  output %s = n%d@," nm n) (outputs t);
  Vec.iter (fun c -> Format.fprintf ppf "  %a@," Cell.pp c) t.cells;
  Format.fprintf ppf "@]"
