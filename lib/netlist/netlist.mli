(** Flat gate-level netlists.

    A netlist owns a set of nets (dense integers), a list of cells, and
    three named port classes:
    - primary inputs,
    - primary outputs,
    - key inputs — the secret configuration bits of a locked design
      (ordinary inputs as far as structure goes, but attacks and
      simulation treat them specially).

    Invariant (checked by {!validate}): every net is driven by exactly
    one source (a port of class input/key, or a cell output), and every
    primary output names an existing net. *)

type t

(** {1 Construction} *)

val create : string -> t
(** Empty netlist with the given module name. *)

val name : t -> string

val new_net : t -> int
(** Allocate a fresh net id. *)

val add_input : t -> string -> int
(** Declare a primary input; returns its net. *)

val add_key : t -> string -> int
(** Declare a key (configuration) input; returns its net. *)

val add_output : t -> string -> int -> unit
(** [add_output t nm net] exposes [net] as primary output [nm]. Raises
    {!Shell_util.Diag.Error} with a [Bad_net_id] payload when [net] is
    out of range. *)

val add_cell : t -> Cell.t -> unit

val set_origin : t -> int -> string -> unit
(** Retag cell [i]'s hierarchical origin (used by the netlist parser
    to restore origin annotations). *)

(** Convenience builders: allocate the output net, add the cell and
    return the output net. [origin] tags the cell's hierarchical path. *)

val gate : ?origin:string -> t -> Cell.kind -> int array -> int
val and_ : ?origin:string -> t -> int -> int -> int
val or_ : ?origin:string -> t -> int -> int -> int
val nand_ : ?origin:string -> t -> int -> int -> int
val nor_ : ?origin:string -> t -> int -> int -> int
val xor_ : ?origin:string -> t -> int -> int -> int
val xnor_ : ?origin:string -> t -> int -> int -> int
val not_ : ?origin:string -> t -> int -> int
val buf : ?origin:string -> t -> int -> int
val mux2 : ?origin:string -> t -> sel:int -> a:int -> b:int -> int
val mux4 : ?origin:string -> t -> s0:int -> s1:int -> int array -> int
val lut : ?origin:string -> t -> Shell_util.Truthtab.t -> int array -> int
val const : ?origin:string -> t -> bool -> int
val dff : ?origin:string -> t -> int -> int

(** {1 Access} *)

val num_nets : t -> int
val num_cells : t -> int
val cells : t -> Cell.t array
val cell : t -> int -> Cell.t
val inputs : t -> (string * int) list
(** In declaration order. *)

val outputs : t -> (string * int) list
val keys : t -> (string * int) list
val input_nets : t -> int array
val output_nets : t -> int array
val key_nets : t -> int array

val driver : t -> int -> int option
(** [driver t net] is the index of the cell driving [net], or [None]
    for port-driven / floating nets. Built lazily; O(1) amortized. *)

val fanout : t -> int -> int list
(** Indices of cells reading [net]. *)

val copy : t -> t

val map_cells : t -> (int -> Cell.t -> Cell.t) -> t
(** Fresh netlist with cell [i] replaced by [f i cell]; nets, ports and
    numbering are untouched. The replacement must keep the original
    output net (and in-range input nets) or the result will not
    validate. The fuzzer's fault injector and shrinker are the
    intended users. *)

val filter_outputs : t -> (string -> bool) -> t
(** Fresh netlist keeping only the primary outputs whose name satisfies
    the predicate (declaration order preserved). *)

(** {1 Analysis} *)

(** Structural defects {!validate} detects, carried as the typed
    payload ({!Shell_util.Diag.payload}) of its diagnostic. *)
type invalid =
  | Bad_net_id of { port : string; net : int }
      (** a port names a net outside [0, num_nets) *)
  | Duplicate_port of { port : string }
      (** two ports of the same class share a name *)
  | Multiple_drivers of { net : int; drivers : int }
  | Undriven_output of { port : string; net : int }
      (** dangling output: the named output reads a floating net *)
  | Undriven_read of { net : int }
      (** a cell input reads a floating net *)

type Shell_util.Diag.payload += Invalid of invalid

val validate : t -> (unit, Shell_util.Diag.t) result
(** Check the single-driver invariant and port sanity. The error's
    payload is [Invalid _]; its context stack is
    [["validate"; module-name]]. Thin wrapper over {!validate_all}
    returning the first violation. *)

val validate_all : t -> Shell_util.Diag.t list
(** Exhaustive form of {!validate}: every violation, in deterministic
    order — port-sanity defects first (inputs, keys, outputs, each in
    declaration order), then multi-driven nets by ascending net id,
    undriven outputs in declaration order, and finally undriven reads
    by ascending net id. [[]] iff the netlist is well-formed. *)

val fingerprint : t -> string
(** 64-bit structural hash (hex) over nets, ports and cells — the pass
    pipeline's cache key ingredient. Equal netlists (same construction
    order) have equal fingerprints; the hash covers cell kinds, LUT
    truth tables, connectivity, origins and port names. *)

val topo_order : t -> int array
(** Indices of all cells in topological order, where sequential cell
    outputs count as sources. Raises [Failure] if the combinational
    part is cyclic. *)

val has_comb_cycle : t -> bool

val comb_view : t -> t
(** Full-scan view per the threat model: every [Dff] is removed, its
    output becomes a primary input ["scan_in_k"] and its input is
    exposed as primary output ["scan_out_k"]. [Config_latch]es are kept
    (they hold the bitstream, which is the attack target). *)

val stats : t -> (string * int) list
(** Cell-kind histogram, e.g. [("mux2", 185); ("dff", 12); ...]. *)

val count_kind : t -> (Cell.kind -> bool) -> int

val pp : Format.formatter -> t -> unit
