(* Shared simulation telemetry. Registered here (not in Sim/Simw) so
   both engines report into one set of counters and registration order
   is independent of which engine a binary touches first. *)

module Obs = Shell_util.Obs

let vectors =
  Obs.counter ~stable:true
    ~help:"test vectors simulated (scalar: 1/propagate; word: lanes/propagate)"
    "sim_vectors"

let words =
  Obs.counter ~stable:true
    ~help:"word-level propagations (Simw evaluations of the full cone)"
    "sim_words"

let cells =
  Obs.counter ~stable:true
    ~help:"combinational cell evaluations (one per cell per propagate)"
    "sim_cells_evaluated"
