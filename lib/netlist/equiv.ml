module Rng = Shell_util.Rng

type verdict = Equivalent | Counterexample of bool array

let exhaustive_limit = 16

let comb nl = if Netlist.count_kind nl (function Cell.Dff -> true | _ -> false) > 0 then Netlist.comb_view nl else nl

let outputs_on sim ?keys ins = Sim.eval_comb sim ?keys ins

let equal_on a b ~keys_a ~keys_b ins =
  let a = comb a and b = comb b in
  let sa = Sim.create a and sb = Sim.create b in
  outputs_on sa ~keys:keys_a ins = outputs_on sb ~keys:keys_b ins

(* Bit-parallel scan: evaluate [vecs] through both designs Simw.width
   vectors at a time; on a miscompare, report the earliest vector in
   presentation order (the lowest differing lane of the earliest
   differing chunk) — byte-identical to the old one-vector-at-a-time
   loop's counterexample. *)
let find_cex sa sb ~keys_a ~keys_b vecs =
  let n = Array.length vecs in
  let result = ref Equivalent in
  let pos = ref 0 in
  while !result = Equivalent && !pos < n do
    let lanes = min Simw.width (n - !pos) in
    let chunk = Array.sub vecs !pos lanes in
    let words = Simw.pack chunk in
    let wa = Simw.eval_comb sa ~keys:keys_a ~lanes words in
    let wb = Simw.eval_comb sb ~keys:keys_b ~lanes words in
    let diff = ref 0 in
    Array.iteri (fun i w -> diff := !diff lor (w lxor wb.(i))) wa;
    if !diff <> 0 then result := Counterexample chunk.(Simw.first_lane !diff)
    else pos := !pos + lanes
  done;
  !result

let check ?(vectors = 256) ?rng ?keys_a ?keys_b a b =
  let a = comb a and b = comb b in
  let n_in = List.length (Netlist.inputs a) in
  if List.length (Netlist.inputs b) <> n_in then
    invalid_arg "Equiv.check: input count mismatch";
  if List.length (Netlist.outputs b) <> List.length (Netlist.outputs a) then
    invalid_arg "Equiv.check: output count mismatch";
  let keys_a =
    match keys_a with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys a)) false
  in
  let keys_b =
    match keys_b with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys b)) false
  in
  let sa = Simw.create a and sb = Simw.create b in
  let vecs =
    if n_in <= exhaustive_limit then
      Array.init (1 lsl n_in) (fun v ->
          Array.init n_in (fun i -> v land (1 lsl i) <> 0))
    else begin
      (* Hoisted generation, in the historical draw order (vector-major,
         bit-minor), then dedup keeping first occurrences: identical
         vectors give identical results, so dropping repeats cannot
         change the verdict or the first counterexample. *)
      let rng = match rng with Some r -> r | None -> Rng.create 0x5eed in
      let raw = Array.make vectors [||] in
      for k = 0 to vectors - 1 do
        raw.(k) <- Array.init n_in (fun _ -> Rng.bool rng)
      done;
      let seen = Hashtbl.create (2 * vectors) in
      let uniq = ref [] in
      Array.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            uniq := v :: !uniq
          end)
        raw;
      Array.of_list (List.rev !uniq)
    end
  in
  find_cex sa sb ~keys_a ~keys_b vecs

let check_sequential ?(cycles = 32) ?(runs = 16) ?rng ?keys_a ?keys_b a b =
  let n_in = List.length (Netlist.inputs a) in
  if List.length (Netlist.inputs b) <> n_in then
    invalid_arg "Equiv.check_sequential: input count mismatch";
  let keys_a =
    match keys_a with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys a)) false
  in
  let keys_b =
    match keys_b with
    | Some k -> k
    | None -> Array.make (List.length (Netlist.keys b)) false
  in
  let rng = match rng with Some r -> r | None -> Rng.create 0xc10c in
  (* Pre-draw all stimulus in the historical order: run-major, then
     cycle, then bit. Runs then evaluate word-parallel, one lane per
     run. *)
  let stim =
    Array.init runs (fun _ -> Array.make cycles [||])
  in
  for r = 0 to runs - 1 do
    for c = 0 to cycles - 1 do
      stim.(r).(c) <- Array.init n_in (fun _ -> Rng.bool rng)
    done
  done;
  let sa = Simw.create a and sb = Simw.create b in
  let result = ref Equivalent in
  let r0 = ref 0 in
  while !result = Equivalent && !r0 < runs do
    let lanes = min Simw.width (runs - !r0) in
    Simw.reset sa;
    Simw.reset sb;
    (* earliest failing cycle per lane; the verdict is the lowest
       failing lane (= lowest run index), matching the scalar loop's
       run-major early exit. Once lane 0 fails no lower-priority
       failure can win, so the cycle loop stops there. *)
    let fail_cycle = Array.make lanes (-1) in
    let any = ref false in
    let c = ref 0 in
    let stop = ref false in
    while (not !stop) && !c < cycles do
      let chunk = Array.init lanes (fun l -> stim.(!r0 + l).(!c)) in
      let words = Simw.pack chunk in
      let oa = Simw.step sa ~keys:keys_a ~lanes words in
      let ob = Simw.step sb ~keys:keys_b ~lanes words in
      let diff = ref 0 in
      Array.iteri (fun i w -> diff := !diff lor (w lxor ob.(i))) oa;
      if !diff <> 0 then begin
        any := true;
        for l = 0 to lanes - 1 do
          if fail_cycle.(l) < 0 && (!diff lsr l) land 1 = 1 then
            fail_cycle.(l) <- !c
        done;
        if fail_cycle.(0) >= 0 then stop := true
      end;
      incr c
    done;
    if !any then begin
      let l = ref 0 in
      while fail_cycle.(!l) < 0 do
        incr l
      done;
      result := Counterexample stim.(!r0 + !l).(fail_cycle.(!l))
    end
    else r0 := !r0 + lanes
  done;
  !result
