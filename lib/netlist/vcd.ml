type signal = { name : string; id : string; source : source }

and source = Input of int | Output of int | Key of int | Net of int

type t = {
  sim : Sim.t;
  timescale : string;
  mutable signals : signal list;  (* reversed *)
  mutable samples : (int * bool array) list;  (* (time, values) reversed *)
  mutable time : int;
  mutable started : bool;
}

(* VCD identifier characters: printable ASCII, starting at '!' *)
let ident i =
  let base = 94 and start = 33 in
  let rec go i acc =
    let acc = String.make 1 (Char.chr (start + (i mod base))) ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ?(timescale = "1ns") sim =
  let nl = Sim.netlist sim in
  let signals = ref [] in
  let n = ref 0 in
  let add name source =
    signals := { name; id = ident !n; source } :: !signals;
    incr n
  in
  List.iteri (fun i (nm, _) -> add nm (Input i)) (Netlist.inputs nl);
  List.iteri (fun i (nm, _) -> add nm (Key i)) (Netlist.keys nl);
  List.iteri (fun i (nm, _) -> add nm (Output i)) (Netlist.outputs nl);
  { sim; timescale; signals = !signals; samples = []; time = 0; started = false }

let probe t name net =
  if t.started then invalid_arg "Vcd.probe: sampling already started";
  t.signals <- { name; id = ident (List.length t.signals); source = Net net } :: t.signals

let sample_values t ~keys ~ins ~outs =
  let nets = Sim.net_values t.sim in
  let value = function
    | Input i -> ins.(i)
    | Output i -> outs.(i)
    | Key i -> keys.(i)
    | Net n -> nets.(n)
  in
  Array.of_list (List.rev_map (fun s -> value s.source) t.signals)

let step t ?keys ins =
  t.started <- true;
  let outs = Sim.step t.sim ?keys ins in
  let keys =
    match keys with
    | Some k -> k
    | None ->
        Array.make (List.length (Netlist.keys (Sim.netlist t.sim))) false
  in
  t.samples <- (t.time, sample_values t ~keys ~ins ~outs) :: t.samples;
  t.time <- t.time + 1;
  outs

(* VCD reference names are whitespace-delimited tokens: replace every
   whitespace *and* non-printable byte, not just spaces, or a stray
   tab/newline in a net name splits (or terminates) the $var line. *)
let escape name =
  if name = "" then "_"
  else String.map (fun c -> if c <= ' ' || c >= '\x7f' then '_' else c) name

let dump t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" t.timescale);
  Buffer.add_string buf
    (Printf.sprintf "$scope module %s $end\n" (Netlist.name (Sim.netlist t.sim)));
  let ordered = List.rev t.signals in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" s.id (escape s.name)))
    ordered;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let prev = ref None in
  List.iter
    (fun (time, values) ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" time);
      List.iteri
        (fun i s ->
          let changed =
            match !prev with None -> true | Some p -> p.(i) <> values.(i)
          in
          if changed then
            Buffer.add_string buf
              (Printf.sprintf "%d%s\n" (Bool.to_int values.(i)) s.id))
        ordered;
      prev := Some values)
    (List.rev t.samples);
  Buffer.add_string buf (Printf.sprintf "#%d\n" t.time);
  Buffer.contents buf

let to_file t path =
  let oc = open_out path in
  output_string oc (dump t);
  close_out oc
