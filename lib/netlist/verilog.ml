module Truthtab = Shell_util.Truthtab

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Nets driven by ports keep their port name; nets exposed as outputs
   take the output name (so most outputs need no alias buffer); the rest
   print as n<id> — uniquified against every claimed name, so a user
   port literally called "n3" can never alias an anonymous net. *)
let net_names nl =
  let names = Array.make (max (Netlist.num_nets nl) 1) "" in
  let claimed = Hashtbl.create 64 in
  let claim (nm, net) =
    if names.(net) = "" && not (Hashtbl.mem claimed nm) then begin
      names.(net) <- nm;
      Hashtbl.add claimed nm ()
    end
  in
  List.iter claim (Netlist.inputs nl);
  List.iter claim (Netlist.keys nl);
  List.iter claim (Netlist.outputs nl);
  for net = 0 to Netlist.num_nets nl - 1 do
    if names.(net) = "" then begin
      let rec fresh nm = if Hashtbl.mem claimed nm then fresh (nm ^ "_") else nm in
      let nm = fresh (Printf.sprintf "n%d" net) in
      names.(net) <- nm;
      Hashtbl.add claimed nm ()
    end
  done;
  names

let print ppf nl =
  let names = net_names nl in
  let inputs = Netlist.inputs nl and keys = Netlist.keys nl in
  let outputs = Netlist.outputs nl in
  let ports =
    List.map (fun (_, net) -> names.(net)) inputs
    @ List.map (fun (_, net) -> names.(net)) keys
    @ List.map fst outputs
  in
  Format.fprintf ppf "module %s (%s);@." (Netlist.name nl)
    (String.concat ", " ports);
  List.iter
    (fun (_, net) -> Format.fprintf ppf "  input %s;@." names.(net))
    inputs;
  (* Key ports are ordinary inputs tagged with a (* keyinput *)
     attribute — "keyinput" is not a Verilog keyword. *)
  List.iter
    (fun (_, net) ->
      Format.fprintf ppf "  (* keyinput *) input %s;@." names.(net))
    keys;
  List.iter (fun (nm, _) -> Format.fprintf ppf "  output %s;@." nm) outputs;
  (* Internal nets that are driven by cells. Output-named nets are
     already declared by their [output] line. *)
  let is_port = Array.make (Array.length names) false in
  List.iter (fun (_, net) -> is_port.(net) <- true) inputs;
  List.iter (fun (_, net) -> is_port.(net) <- true) keys;
  List.iter
    (fun (nm, net) -> if names.(net) = nm then is_port.(net) <- true)
    outputs;
  Array.iter
    (fun c ->
      let out = c.Cell.out in
      if not is_port.(out) then Format.fprintf ppf "  wire %s;@." names.(out))
    (Netlist.cells nl);
  Array.iteri
    (fun i c ->
      let conns =
        Array.to_list (Array.map (fun net -> names.(net)) c.Cell.ins)
        @ [ names.(c.Cell.out) ]
      in
      let conns = String.concat ", " conns in
      (match c.Cell.kind with
      | Cell.Lut tt ->
          Format.fprintf ppf "  lut #(%d, 64'h%Lx) g%d (%s);@."
            (Truthtab.arity tt) (Truthtab.bits tt) i conns
      | Cell.Const b -> Format.fprintf ppf "  const%d g%d (%s);@." (Bool.to_int b) i conns
      | k -> Format.fprintf ppf "  %s g%d (%s);@." (Cell.kind_name k) i conns);
      if c.Cell.origin <> "" then
        Format.fprintf ppf "  // ^ origin: %s@." c.Cell.origin)
    (Netlist.cells nl);
  (* Outputs fed directly by a named net need an alias buffer only when
     the names differ; we emit an assign-free dialect, so outputs are
     connected by name. A direct connection exists when the output name
     equals the driving net's name; otherwise emit a buf. *)
  List.iter
    (fun (nm, net) ->
      if names.(net) <> nm then Format.fprintf ppf "  buf gout_%s (%s, %s);@." nm names.(net) nm)
    outputs;
  Format.fprintf ppf "endmodule@."

let to_string nl = Format.asprintf "%a" print nl

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Hex of int64  (* 64'h... literal *)
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Hash
  | Attr of string  (* "(* ... *)" attribute, contents trimmed *)
  | Origin of string  (* the printer's "// ^ origin: ..." annotation *)

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  let i = ref 0 in
  (* Brackets are ordinary name characters in this dialect: multi-bit
     ports elaborate to bit-level names like [a[3]]. *)
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '$' || c = '.' || c = '[' || c = ']'
  in
  while !i < n do
    (match src.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '/' when !i + 1 < n && src.[!i + 1] = '/' ->
        let start = !i in
        while !i < n && src.[!i] <> '\n' do incr i done;
        let comment = String.sub src start (!i - start) in
        let marker = "// ^ origin: " in
        let ml = String.length marker in
        if String.length comment > ml && String.sub comment 0 ml = marker then
          toks :=
            (Origin (String.sub comment ml (String.length comment - ml)), !line)
            :: !toks
    | '(' when !i + 1 < n && src.[!i + 1] = '*' ->
        (* attribute instance: scan to the matching "*)" *)
        let start = !i + 2 in
        i := start;
        while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = ')') do
          if src.[!i] = '\n' then incr line;
          incr i
        done;
        if !i + 1 >= n then fail "unterminated attribute"
        else begin
          let body = String.trim (String.sub src start (!i - start)) in
          toks := (Attr body, !line) :: !toks;
          i := !i + 2
        end
    | '(' -> toks := (Lparen, !line) :: !toks; incr i
    | ')' -> toks := (Rparen, !line) :: !toks; incr i
    | ';' -> toks := (Semi, !line) :: !toks; incr i
    | ',' -> toks := (Comma, !line) :: !toks; incr i
    | '#' -> toks := (Hash, !line) :: !toks; incr i
    | c when c >= '0' && c <= '9' ->
        let start = !i in
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
        if !i + 1 < n && src.[!i] = '\'' && (src.[!i + 1] = 'h' || src.[!i + 1] = 'H')
        then begin
          i := !i + 2;
          let hstart = !i in
          while
            !i < n
            && (let c = src.[!i] in
                (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
                || (c >= 'A' && c <= 'F'))
          do incr i done;
          if !i = hstart then fail "empty hex literal";
          let hex = String.sub src hstart (!i - hstart) in
          match Int64.of_string_opt ("0x" ^ hex) with
          | Some v -> toks := (Hex v, !line) :: !toks
          | None -> fail ("bad hex literal: " ^ hex)
        end
        else
          toks := (Int (int_of_string (String.sub src start (!i - start))), !line) :: !toks
    | c when is_ident_char c ->
        let start = !i in
        while !i < n && is_ident_char src.[!i] do incr i done;
        toks := (Ident (String.sub src start (!i - start)), !line) :: !toks
    | c -> fail (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { mutable toks : (token * int) list }

let fail_at line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let next st =
  match st.toks with
  | [] -> raise (Parse_error "unexpected end of input")
  | t :: rest ->
      st.toks <- rest;
      t

let expect st tok what =
  let t, line = next st in
  if t <> tok then fail_at line ("expected " ^ what)

let ident st =
  match next st with
  | Ident s, _ -> s
  | _, line -> fail_at line "expected identifier"

let int_lit st =
  match next st with
  | Int v, _ -> v
  | _, line -> fail_at line "expected integer"

let kind_of_name nm line =
  match nm with
  | "and2" -> Some Cell.And
  | "or2" -> Some Cell.Or
  | "nand2" -> Some Cell.Nand
  | "nor2" -> Some Cell.Nor
  | "xor2" -> Some Cell.Xor
  | "xnor2" -> Some Cell.Xnor
  | "not" -> Some Cell.Not
  | "buf" -> Some Cell.Buf
  | "mux2" -> Some Cell.Mux2
  | "mux4" -> Some Cell.Mux4
  | "dff" -> Some Cell.Dff
  | "cfg_latch" -> Some Cell.Config_latch
  | "const0" -> Some (Cell.Const false)
  | "const1" -> Some (Cell.Const true)
  | "input" | "output" | "keyinput" | "wire" | "module" | "endmodule" | "lut" ->
      None
  | other -> fail_at line ("unknown cell kind: " ^ other)

let parse src =
  let st = { toks = lex src } in
  expect st (Ident "module") "'module'";
  let mod_name = ident st in
  let nl = Netlist.create mod_name in
  (* Header port list: names only; classes come from declarations. *)
  expect st Lparen "'('";
  let rec skip_ports () =
    match next st with
    | Rparen, _ -> ()
    | Ident _, _ | Comma, _ -> skip_ports ()
    | _, line -> fail_at line "malformed port list"
  in
  (match st.toks with
  | (Rparen, _) :: rest -> st.toks <- rest
  | _ -> skip_ports ());
  expect st Semi "';'";
  let nets : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let net_of nm =
    match Hashtbl.find_opt nets nm with
    | Some id -> id
    | None ->
        let id = Netlist.new_net nl in
        Hashtbl.add nets nm id;
        id
  in
  let pending_outputs = ref [] in
  let connections st =
    expect st Lparen "'('";
    let rec go acc =
      match next st with
      | Ident nm, _ -> (
          match next st with
          | Comma, _ -> go (nm :: acc)
          | Rparen, _ -> List.rev (nm :: acc)
          | _, line -> fail_at line "expected ',' or ')'")
      | Rparen, _ -> List.rev acc
      | _, line -> fail_at line "expected net name"
    in
    let conns = go [] in
    expect st Semi "';'";
    conns
  in
  (* the instance name doubles as a default origin tag so block-level
     selection works on hand-written files; an explicit
     "// ^ origin: ..." annotation overrides it *)
  let add_instance ~iname kind conns line =
    match List.rev conns with
    | [] -> fail_at line "instance with no connections"
    | out :: rev_ins ->
        let ins = Array.of_list (List.rev_map net_of rev_ins) in
        let out = net_of out in
        (try Netlist.add_cell nl (Cell.make ~origin:iname kind ins out)
         with Invalid_argument m -> fail_at line m)
  in
  let rec statements () =
    match next st with
    | Origin o, _ ->
        let n = Netlist.num_cells nl in
        if n > 0 then Netlist.set_origin nl (n - 1) o;
        statements ()
    | Ident "endmodule", _ -> ()
    | Ident "input", _ ->
        let nm = ident st in
        expect st Semi "';'";
        if Hashtbl.mem nets nm then fail_at 0 ("duplicate net: " ^ nm);
        Hashtbl.add nets nm (Netlist.add_input nl nm);
        statements ()
    | Attr "keyinput", line ->
        (* the emitted form: "(* keyinput *) input nm;" *)
        (match next st with
        | Ident "input", _ -> ()
        | _, l -> fail_at l "expected 'input' after (* keyinput *)");
        let nm = ident st in
        expect st Semi "';'";
        if Hashtbl.mem nets nm then fail_at line ("duplicate net: " ^ nm);
        Hashtbl.add nets nm (Netlist.add_key nl nm);
        statements ()
    | Attr _, _ ->
        (* other attributes carry no meaning in this dialect *)
        statements ()
    | Ident "keyinput", _ ->
        (* legacy files written before keys became attributed inputs *)
        let nm = ident st in
        expect st Semi "';'";
        if Hashtbl.mem nets nm then fail_at 0 ("duplicate net: " ^ nm);
        Hashtbl.add nets nm (Netlist.add_key nl nm);
        statements ()
    | Ident "output", _ ->
        let nm = ident st in
        expect st Semi "';'";
        pending_outputs := nm :: !pending_outputs;
        statements ()
    | Ident "wire", _ ->
        let nm = ident st in
        expect st Semi "';'";
        ignore (net_of nm);
        statements ()
    | Ident "lut", line ->
        expect st Hash "'#'";
        expect st Lparen "'('";
        let k = int_lit st in
        expect st Comma "','";
        let bits =
          match next st with
          | Hex v, _ -> v
          | Int v, _ -> Int64.of_int v
          | _, l -> fail_at l "expected truth-table literal"
        in
        expect st Rparen "')'";
        let iname = ident st in
        let conns = connections st in
        let tt =
          try Truthtab.create ~arity:k ~bits
          with Invalid_argument m -> fail_at line m
        in
        add_instance ~iname (Cell.Lut tt) conns line;
        statements ()
    | Ident nm, line -> (
        match kind_of_name nm line with
        | Some kind ->
            let iname = ident st in
            let conns = connections st in
            add_instance ~iname kind conns line;
            statements ()
        | None -> fail_at line ("unexpected keyword: " ^ nm))
    | _, line -> fail_at line "expected statement"
  in
  statements ();
  List.iter
    (fun nm ->
      match Hashtbl.find_opt nets nm with
      | Some net -> Netlist.add_output nl nm net
      | None -> raise (Parse_error ("undriven output: " ^ nm)))
    (List.rev !pending_outputs);
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error d ->
      raise (Parse_error ("invalid netlist: " ^ Shell_util.Diag.to_string d)));
  nl
