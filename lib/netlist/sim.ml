module Obs = Shell_util.Obs

type t = {
  netlist : Netlist.t;
  comb_order : int array;  (* topo order, sequential cells filtered out *)
  cells : Cell.t array;
  nets : bool array;
  dff_state : bool array;  (* indexed by position in [seq_cells] *)
  seq_cells : int array;  (* cell indices of Dffs, in netlist order *)
  latch_state : bool array;
  latch_cells : int array;
}

let num_config_latches nl =
  Netlist.count_kind nl (function Cell.Config_latch -> true | _ -> false)

let create ?config netlist =
  let cells = Netlist.cells netlist in
  let order = Netlist.topo_order netlist in
  let seq = ref [] and latches = ref [] in
  Array.iteri
    (fun i c ->
      match c.Cell.kind with
      | Cell.Dff -> seq := i :: !seq
      | Cell.Config_latch -> latches := i :: !latches
      | _ -> ())
    cells;
  let seq_cells = Array.of_list (List.rev !seq) in
  let latch_cells = Array.of_list (List.rev !latches) in
  let latch_state =
    match config with
    | None -> Array.make (Array.length latch_cells) false
    | Some c ->
        if Array.length c <> Array.length latch_cells then
          invalid_arg "Sim.create: config length mismatch";
        Array.copy c
  in
  let comb_order =
    Array.of_seq
      (Seq.filter
         (fun ci -> not (Cell.is_sequential cells.(ci).Cell.kind))
         (Array.to_seq order))
  in
  {
    netlist;
    comb_order;
    cells;
    nets = Array.make (max (Netlist.num_nets netlist) 1) false;
    dff_state = Array.make (Array.length seq_cells) false;
    seq_cells;
    latch_state;
    latch_cells;
  }

let netlist t = t.netlist

let reset t = Array.fill t.dff_state 0 (Array.length t.dff_state) false

let load_ports t ?keys ins =
  let in_nets = Netlist.input_nets t.netlist in
  if Array.length ins <> Array.length in_nets then
    invalid_arg "Sim: input vector length mismatch";
  Array.iteri (fun i net -> t.nets.(net) <- ins.(i)) in_nets;
  let key_nets = Netlist.key_nets t.netlist in
  let keys =
    match keys with
    | Some k ->
        if Array.length k <> Array.length key_nets then
          invalid_arg "Sim: key vector length mismatch";
        k
    | None -> Array.make (Array.length key_nets) false
  in
  Array.iteri (fun i net -> t.nets.(net) <- keys.(i)) key_nets

let propagate t =
  (* Expose stored state before evaluating the combinational cone. *)
  Array.iteri
    (fun i ci -> t.nets.(t.cells.(ci).Cell.out) <- t.dff_state.(i))
    t.seq_cells;
  Array.iteri
    (fun i ci -> t.nets.(t.cells.(ci).Cell.out) <- t.latch_state.(i))
    t.latch_cells;
  let nets = t.nets and cells = t.cells in
  Array.iter
    (fun ci ->
      let c = cells.(ci) in
      nets.(c.Cell.out) <- Cell.eval_in c.Cell.kind nets c.Cell.ins)
    t.comb_order;
  Obs.incr Sim_obs.vectors;
  Obs.add Sim_obs.cells (Array.length t.comb_order)

let read_outputs t =
  Array.map (fun net -> t.nets.(net)) (Netlist.output_nets t.netlist)

let eval_comb t ?keys ins =
  load_ports t ?keys ins;
  propagate t;
  read_outputs t

let step t ?keys ins =
  let outs = eval_comb t ?keys ins in
  Array.iteri
    (fun i ci -> t.dff_state.(i) <- t.nets.(t.cells.(ci).Cell.ins.(0)))
    t.seq_cells;
  outs

let run t ?keys vectors = List.map (fun v -> step t ?keys v) vectors

let net_values t = Array.copy t.nets
