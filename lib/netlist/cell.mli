(** Gate-level cell kinds.

    Cells are single-output. Input ordering conventions:
    - [Mux2]: [[|sel; a; b|]], output is [a] when [sel] is low, [b] when high.
    - [Mux4]: [[|s0; s1; a; b; c; d|]], [{s1,s0}] selects [a..d].
    - [Lut tt]: inputs in truth-table variable order.
    - [Dff] / [Config_latch]: [[|d|]]; the output is the stored state.

    [Config_latch] is the FABulous-style configuration storage element:
    behaviourally a constant once the bitstream is loaded, but accounted
    differently by the cost model (paper, Table I). *)

type kind =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Mux2
  | Mux4
  | Lut of Shell_util.Truthtab.t
  | Const of bool
  | Dff
  | Config_latch

type t = {
  kind : kind;
  ins : int array;  (** driving nets, in the conventional order above *)
  out : int;  (** driven net *)
  origin : string;  (** hierarchical path tag, e.g. ["top/core2/_mem_wr"] *)
}

val make : ?origin:string -> kind -> int array -> int -> t
(** [make kind ins out] checks the input count against {!arity}. *)

val arity : kind -> int
(** Expected number of inputs, e.g. 3 for [Mux2]. *)

val is_sequential : kind -> bool
(** [Dff] and [Config_latch]. *)

val kind_name : kind -> string
(** Short stable mnemonic ("and2", "mux2", "lut4:cafe", ...). *)

val eval : kind -> bool array -> bool
(** Combinational function of the cell; must not be applied to
    sequential kinds. *)

val eval_in : kind -> bool array -> int array -> bool
(** [eval_in kind nets ins] is [eval kind (Array.map (Array.get nets) ins)]
    without the intermediate array: the simulator hot path. *)

val eval_word : kind -> int array -> int
(** Word-level combinational function: each input/output int carries
    one test vector per bit (bit-parallel simulation). Gates and muxes
    are plain bitwise ops; [Lut] tables evaluate by Shannon cofactor
    expansion in 2^arity - 1 word ops. Output bits beyond the lanes
    actually driven by the caller are unspecified. *)

val eval_word_in : kind -> int array -> int array -> int
(** [eval_word_in kind nets ins]: {!eval_word} reading operands
    directly from the net-value store (no per-cell allocation). *)

val pp : Format.formatter -> t -> unit
