(** Obs counters shared by the scalar ({!Sim}) and word-level
    ({!Simw}) simulation engines.

    All three are registered [~stable:true]: their merged values are a
    pure function of the simulation work submitted, independent of
    SHELL_JOBS or scheduling. Note that workloads whose {e amount} of
    simulation is wall-clock dependent (the SAT attack's
    budget-bounded DIP loop querying a simulation oracle) contribute a
    time-dependent number of propagations; stable byte-diffs in CI
    therefore run deterministic workloads (flow tables, fuzz
    campaigns), where these counters are byte-identical across job
    counts. *)

val vectors : Shell_util.Obs.counter
(** Test vectors fully propagated: +1 per scalar propagate, +lanes per
    word propagate. *)

val words : Shell_util.Obs.counter
(** Word-level propagations (one per {!Simw} evaluation). *)

val cells : Shell_util.Obs.counter
(** Combinational cell evaluations (scalar: per vector; word: per
    word, i.e. up to 63 vectors per increment). *)
