(* Job execution shared by the CLI and the daemon.

   The serve contract is byte-identity: a job submitted over the
   socket must return exactly the bytes the equivalent CLI invocation
   prints. The only way to guarantee that across refactors is for
   both sides to call the same functions — so the CLI's
   benchmark/TfR/flow/render plumbing lives here and
   [bin/shell_cli.ml] is a thin argument-parsing shell over it.
   Everything returns [(_, Diag.t) result]; only the CLI turns errors
   into [exit 1]. *)

module N = Shell_netlist
module F = Shell_fabric
module L = Shell_locking
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits
module Fz = Shell_fuzz
module Lint = Shell_lint.Lint
module Rules = Shell_lint.Rules
module Diag = Shell_util.Diag
module J = Shell_util.Jsonw
module P = Protocol

let ( let* ) = Result.bind

(* No ~pass here: these diagnostics render on the CLI's stderr too,
   where the historical messages had no pass prefix. *)
let errf fmt = Format.kasprintf (fun m -> Error (Diag.make m)) fmt

(* ---------------- shared lookups ---------------- *)

let netlist_of_bench name =
  match Circ.Catalog.find name with
  | Some e -> Ok (e.Circ.Catalog.netlist ())
  | None -> (
      match String.lowercase_ascii name with
      | "soc" -> Ok (Circ.Soc.netlist ())
      | "xbar" -> Ok (Circ.Axi_xbar.netlist ())
      | "desx" -> Ok (Circ.Desx.netlist ())
      | _ -> errf "unknown benchmark %S" name)

let default_tfr name =
  match Circ.Catalog.find name with
  | Some e ->
      let t = e.Circ.Catalog.tfr_shell in
      Some (t.Circ.Catalog.route, t.Circ.Catalog.lgc, t.Circ.Catalog.label)
  | None -> (
      match String.lowercase_ascii name with
      | "soc" ->
          Some
            ([ "/xbar" ], [ ":wrap_core2"; ":wrap_core4" ], "Xbar + wrappers")
      | "xbar" -> Some ([ ":_xbar_route"; ":_xbar_arb" ], [], "whole Xbar")
      | _ -> None)

(* The wire names for fabric styles — same spellings as the CLI's
   --style enum, so specs round-trip through both front ends. *)
let style_id = function
  | F.Style.Openfpga -> "openfpga"
  | F.Style.Fabulous_std -> "fabulous"
  | F.Style.Fabulous_muxchain -> "muxchain"

let style_of_string = function
  | "openfpga" -> Ok F.Style.Openfpga
  | "fabulous" -> Ok F.Style.Fabulous_std
  | "muxchain" -> Ok F.Style.Fabulous_muxchain
  | s -> errf "unknown fabric style %S (openfpga, fabulous or muxchain)" s

(* "xor:8", "rlut:4", "hlut:4", "mux:8", "muxlut:8" — the pure locking
   schemes; "efpga" (SheLL redaction) rides through the lock flow
   because it needs the full pipeline per benchmark. *)
let locked_of_spec ~seed nl spec =
  let fail () =
    errf "bad scheme spec %S (want xor:N, rlut:N, hlut:N, mux:N or muxlut:N)"
      spec
  in
  match String.split_on_char ':' spec with
  | [ name; n ] -> (
      match (name, int_of_string_opt n) with
      | _, None -> fail ()
      | "xor", Some bits -> Ok (L.Schemes.xor_keys ~seed ~bits nl)
      | "rlut", Some gates -> Ok (L.Schemes.random_lut ~seed ~gates nl)
      | "hlut", Some gates -> Ok (L.Schemes.heuristic_lut ~seed ~gates nl)
      | "mux", Some width -> Ok (L.Schemes.mux_routing ~seed ~width nl)
      | "muxlut", Some width -> Ok (L.Schemes.mux_lut ~seed ~width nl)
      | _ -> fail ())
  | _ -> fail ()

(* ---------------- lock ---------------- *)

let resolve_tfr (s : P.lock_spec) =
  if s.P.route = [] && s.P.lgc = [] then
    match default_tfr s.P.bench with
    | Some t -> Ok t
    | None -> errf "no default TfR for this design: pass --route/--lgc"
  else
    Ok (s.P.route, s.P.lgc, String.concat "+" (s.P.route @ s.P.lgc))

let lock_flow (s : P.lock_spec) =
  let* style = style_of_string s.P.style in
  let* nl = netlist_of_bench s.P.bench in
  let* route, lgc, label = resolve_tfr s in
  let cfg =
    {
      (C.Flow.shell_config ~target:(C.Flow.Fixed { route; lgc; label }) ())
      with
      C.Flow.style;
      seed = s.P.seed;
    }
  in
  match C.Flow.run cfg nl with
  | r -> Ok r
  | exception Diag.Error d -> Error d

let lock_render (r : C.Flow.result) =
  Format.asprintf "%a@." C.Flow.pp_summary r
  ^ Printf.sprintf "verify: %s\n" (if C.Flow.verify r then "PASS" else "FAIL")

let lock_output s =
  let* r = lock_flow s in
  Ok (lock_render r)

(* ---------------- attack ---------------- *)

let detail_string detail =
  if detail = [] then ""
  else
    "detail:"
    ^ String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%d" k v) detail)
    ^ "\n"

let attack_output (a : P.attack_spec) =
  let s = a.P.target in
  let* r = lock_flow s in
  let* _, _, label = resolve_tfr s in
  let lk = C.Flow.locked_sub r in
  let* attack =
    match A.Battery.find a.P.attack with
    | Some at -> Ok at
    | None ->
        errf "unknown attack %S (known: %s)" a.P.attack
          (String.concat ", " (A.Battery.names ()))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "attacking %s (%s) with %s, key %d bits, budget %d DIPs / %d \
        conflicts / %.0fs / %d vectors\n"
       s.P.bench label attack.A.Attack.name (L.Locked.key_bits lk) a.P.dips
       a.P.conflicts a.P.seconds a.P.vectors);
  let subject =
    A.Attack.subject
      ~label:(s.P.bench ^ "/" ^ label)
      ~cycle_blocks:r.C.Flow.emitted.F.Emit.cycle_blocks
      ~original:r.C.Flow.cut.C.Extraction.sub lk
  in
  let budget =
    A.Attack.budget ~max_dips:a.P.dips ~max_conflicts:a.P.conflicts
      ~time_limit:a.P.seconds ~vectors:a.P.vectors ()
  in
  (match attack.A.Attack.run budget subject with
  | A.Attack.Broken (key, st) ->
      Buffer.add_string buf
        (Printf.sprintf
           "BROKEN: key recovered in %d iterations, %d oracle queries, %d \
            conflicts, %.2fs\n"
           st.A.Attack.iterations st.A.Attack.oracle_queries
           st.A.Attack.conflicts st.A.Attack.elapsed);
      Buffer.add_string buf (detail_string st.A.Attack.detail);
      Buffer.add_string buf
        (Printf.sprintf "hamming distance to real bitstream: %d / %d\n"
           (F.Bitstream.hamming key lk.L.Locked.key)
           (Array.length key))
  | A.Attack.Resilient st ->
      Buffer.add_string buf
        (Printf.sprintf
           "RESILIENT within budget (%d iterations, %d oracle queries, %d \
            conflicts, %.2fs; %d/%d bits recovered)\n"
           st.A.Attack.iterations st.A.Attack.oracle_queries
           st.A.Attack.conflicts st.A.Attack.elapsed st.A.Attack.recovered_bits
           st.A.Attack.key_bits);
      Buffer.add_string buf (detail_string st.A.Attack.detail)
  | A.Attack.Inapplicable why ->
      Buffer.add_string buf (Printf.sprintf "N/A: %s\n" why));
  Ok (Buffer.contents buf)

(* ---------------- battery ---------------- *)

let battery_matrix ?jobs (b : P.battery_spec) =
  let* attacks =
    match b.P.attacks with
    | [] -> Ok A.Battery.all
    | names ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | n :: tl -> (
              match A.Battery.find n with
              | Some a -> go (a :: acc) tl
              | None -> errf "unknown attack %S (try --list-attacks)" n)
        in
        go [] names
  in
  let* subjects =
    List.fold_left
      (fun acc bench ->
        let* acc = acc in
        let* nl = netlist_of_bench bench in
        let* subs =
          List.fold_left
            (fun acc spec ->
              let* acc = acc in
              let* lk = locked_of_spec ~seed:b.P.bt_seed nl spec in
              Ok
                (A.Attack.subject
                   ~label:(bench ^ "/" ^ spec)
                   ~original:nl lk
                :: acc))
            (Ok []) b.P.schemes
        in
        Ok (List.rev_append subs acc))
      (Ok []) b.P.benches
  in
  let subjects = List.rev subjects in
  if subjects = [] then errf "pass -b BENCH and --scheme SPEC"
  else begin
    let budget =
      A.Attack.budget ~max_dips:b.P.bt_dips ~max_conflicts:b.P.bt_conflicts
        ~time_limit:b.P.bt_seconds ~vectors:b.P.bt_vectors ()
    in
    Ok (A.Battery.run ?jobs ~attacks ~budget subjects)
  end

let battery_render_json m = J.to_string ~indent:2 (A.Battery.matrix_json m) ^ "\n"

let battery_output ?jobs b =
  let* m = battery_matrix ?jobs b in
  Ok (battery_render_json m)

(* ---------------- fuzz ---------------- *)

(* Daemon fuzzing reports without shrinking or reproducer files: a
   shared long-lived process shouldn't write minimized Verilog into
   its own working directory on behalf of a remote client. *)
let fuzz_output ?jobs (f : P.fuzz_spec) =
  let report =
    Fz.Runner.run ?jobs ~oracles:Fz.Oracles.all ~shrink:false ~seed:f.P.fz_seed
      ~cases:f.P.cases ()
  in
  Ok (Format.asprintf "%a" Fz.Runner.pp_report report)

(* ---------------- lint ---------------- *)

(* Rebuild the same subject the pipeline's lint pass checks, so a
   locked flow can be re-linted under a different severity floor,
   baseline or job count. *)
let lint_subject_of_result (r : C.Flow.result) =
  let route_origins =
    C.Selection.route_origins r.C.Flow.analysis r.C.Flow.choice
  in
  let lgc_origins =
    List.map
      (fun i ->
        r.C.Flow.analysis.C.Connectivity.blocks.(i).C.Connectivity.name)
      r.C.Flow.choice.C.Selection.lgc_blocks
  in
  Lint.subject
    ~name:(N.Netlist.name r.C.Flow.original)
    ~key:(F.Bitstream.bits r.C.Flow.emitted.F.Emit.bitstream)
    ~selection:{ Lint.design = r.C.Flow.original; route_origins; lgc_origins }
    ~fabric:r.C.Flow.pnr.Shell_pnr.Pnr.fabric
    ~bitstream:r.C.Flow.emitted.F.Emit.bitstream ~used:r.C.Flow.resources
    ~pnr:r.C.Flow.pnr
    ~shrunk:r.C.Flow.config.C.Flow.shrink r.C.Flow.locked_full

let lint_output ?jobs (l : P.lint_spec) =
  let* style = style_of_string l.P.lint_style in
  if l.P.lint_benches = [] then errf "nothing to lint: pass -b BENCH"
  else
    let* subjects =
      List.fold_left
        (fun acc b ->
          let* acc = acc in
          let* nl = netlist_of_bench b in
          let* subject =
            if l.P.locked then
              let cfg =
                {
                  (C.Flow.shell_config ()) with
                  C.Flow.style;
                  seed = l.P.lint_seed;
                }
              in
              match C.Flow.run cfg nl with
              | r -> Ok (lint_subject_of_result r)
              | exception Diag.Error d -> Error d
            else Ok (Lint.subject nl)
          in
          Ok (subject :: acc))
        (Ok []) l.P.lint_benches
    in
    let reports =
      List.map (Lint.run ?jobs ~rules:Rules.all) (List.rev subjects)
    in
    Ok (J.to_string ~indent:2 (Lint.reports_json reports) ^ "\n")

(* ---------------- dispatch ---------------- *)

let run ?jobs (job : P.job) : (string, Diag.t) result =
  match job with
  | P.Lock s -> lock_output s
  | P.Attack a -> attack_output a
  | P.Battery b -> battery_output ?jobs b
  | P.Fuzz f -> fuzz_output ?jobs f
  | P.Lint l -> lint_output ?jobs l
