(** Bounded priority queue gating job admission into the daemon.

    Backpressure by rejection: when the queue is at capacity, {!push}
    returns a typed {!Shell_util.Diag.t} carrying {!Queue_full} —
    the server turns it into a [Rejected] response instead of letting
    latency grow without bound. Not thread-safe by design: the server
    is a single-threaded event loop and parallelism lives inside job
    execution (the domain pool). *)

type Shell_util.Diag.payload += Queue_full of { depth : int; cap : int }

type 'a t

val create : cap:int -> 'a t
(** Raises [Invalid_argument] when [cap < 1]. *)

val depth : 'a t -> int
val cap : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:int -> 'a -> (unit, Shell_util.Diag.t) result
(** Admit a job. Higher [priority] pops first; within a priority,
    admission order (FIFO). [Error] carries {!Queue_full} when at
    capacity. *)

val pop : 'a t -> 'a option
