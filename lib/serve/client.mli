(** Blocking client for the serve daemon.

    One request, one response, strictly in order per connection.
    Errors are strings (transport or protocol); job-level failures
    come back as typed {!Protocol.response} values. *)

type t

val connect : Server.address -> t
(** Raises [Unix.Unix_error] when the daemon is not reachable. *)

val close : t -> unit

val with_connection : Server.address -> (t -> 'a) -> 'a

val call :
  t -> (int -> Protocol.request) -> (Protocol.response, string) result
(** Send the request built from a fresh id and read its response. *)

val submit :
  t ->
  ?priority:int ->
  Protocol.job ->
  (Protocol.response, string) result
(** A [Result]/[Rejected]/[Failed] response for the job. *)

val status : t -> (Protocol.status_info, string) result
val metrics : t -> (string, string) result

val ping : t -> (int, string) result
(** The server's protocol version. *)

val shutdown : t -> (string, string) result
