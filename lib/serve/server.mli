(** The `shell serve` daemon: a single-threaded event loop accepting
    length-prefixed JSON job requests (see {!Protocol}) over a Unix or
    TCP socket.

    Jobs pass an admission-control queue ({!Admission}: bounded
    depth, per-job priority, typed rejection) and run inline, one at
    a time — parallelism lives inside a job on the domain pool, and
    serializing jobs is what keeps outputs and cache-counter
    observations deterministic. Attaching a {!Store} spills the pass
    cache to disk so warm hits survive restarts. The metrics request
    answers with the Prometheus rendering of the live Obs registry. *)

type address = Unix_sock of string | Tcp of string * int

val address_of_string : string -> (address, string) result
(** Anything with a '/' (or no ':') is a Unix socket path;
    [host:port] (empty host = 127.0.0.1) is TCP. *)

val address_to_string : address -> string

type config = {
  address : address;
  queue_cap : int;  (** admission queue depth before rejection *)
  max_frame : int;  (** per-connection frame-size ceiling *)
  max_seconds : float;  (** clamp on per-job time budgets *)
  store_dir : string option;  (** pass-cache spill directory *)
  cache_max_bytes : int option;
      (** size cap on the spill store: when set (and [store_dir] is),
          {!Store.gc} prunes least-recently-read blobs back under the
          cap at daemon startup, before the store attaches *)
  log : bool;  (** stderr progress lines *)
}

val default_config : address -> config
(** queue 64 deep, {!Shell_util.Jsonw.default_max_frame}, 600 s job
    clamp, no spill store, no size cap, quiet. *)

val serve : ?on_ready:(unit -> unit) -> config -> unit
(** Run until a [Shutdown] request, then drain response buffers,
    close the socket (unlinking a Unix path), detach the store and
    restore the Obs enabled state. [on_ready] fires once the
    listening socket is bound — tests use it to synchronise. *)
