(** Content-addressed on-disk blob store for the pass-cache spill.

    Keys are hashed (MD5) into a two-level sharded layout under the
    root directory; blobs are opaque bytes. Writes are atomic
    (tmp + rename). Eviction is manual: delete the directory — the
    pipeline treats any unreadable/corrupt blob as a cache miss. *)

type t

val create : root:string -> t
(** Creates the root directory (and parents) if missing. *)

val root : t -> string
val save : t -> string -> string -> unit
val load : t -> string -> string option

val entries : t -> int
(** Number of stored blobs (directory scan; for status/tests). *)

type gc_report = {
  scanned : int;  (** blobs found in the store *)
  scanned_bytes : int;  (** their total size before eviction *)
  deleted : int;
  reclaimed_bytes : int;
}

val gc : t -> max_bytes:int -> gc_report
(** Size-capped LRU pruning: when the store holds more than
    [max_bytes], delete blobs least-recently-read first (access time,
    path as a deterministic tie-break on coarse-atime filesystems)
    until the total is back under the cap. A deleted blob simply
    becomes a pipeline cache miss. Unremovable files are skipped but
    still counted as evicted space, so the loop terminates. *)

val pp_gc_report : Format.formatter -> gc_report -> unit

val pipeline_store : t -> Shell_core.Pipeline.store

val attach : t -> unit
(** [Pipeline.set_store] wiring: warm pass-cache misses consult this
    store, and published products spill into it. *)

val detach : unit -> unit
