(* Content-addressed blob store backing the pass-cache spill.

   Addressing: MD5(key), sharded as root/ab/cdef... (two-hex-digit
   fan-out) so a long-lived cache directory never collects thousands
   of entries in one directory. The blob is opaque — the pipeline
   marshals [(key, product)] and verifies the key on load, so a hash
   collision or a corrupt file degrades to a cache miss there. Writes
   are tmp + rename: a concurrent reader (or a crash mid-write) sees
   either the old blob or the new one, never a torn file. *)

type t = { root : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~root =
  mkdir_p root;
  { root }

let root t = t.root

let path t key =
  let h = Digest.to_hex (Digest.string key) in
  Filename.concat (Filename.concat t.root (String.sub h 0 2))
    (String.sub h 2 (String.length h - 2))

let save t key blob =
  let p = path t key in
  mkdir_p (Filename.dirname p);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
      (Hashtbl.hash (key, String.length blob))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc blob);
  Sys.rename tmp p

let load t key =
  let p = path t key in
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Some (really_input_string ic n))

let entries t =
  if not (Sys.file_exists t.root) then 0
  else
    Array.fold_left
      (fun acc shard ->
        let dir = Filename.concat t.root shard in
        if Sys.is_directory dir then acc + Array.length (Sys.readdir dir)
        else acc)
      0 (Sys.readdir t.root)

(* ---------------- size-capped GC ---------------- *)

type gc_report = {
  scanned : int;
  scanned_bytes : int;
  deleted : int;
  reclaimed_bytes : int;
}

let blobs t =
  if not (Sys.file_exists t.root) then []
  else
    Array.fold_left
      (fun acc shard ->
        let dir = Filename.concat t.root shard in
        if Sys.is_directory dir then
          Array.fold_left
            (fun acc name ->
              let p = Filename.concat dir name in
              match Unix.lstat p with
              | { Unix.st_kind = Unix.S_REG; st_size; st_atime; _ } ->
                  (p, st_size, st_atime) :: acc
              | _ | (exception Unix.Unix_error _) -> acc)
            acc (Sys.readdir dir)
        else acc)
      [] (Sys.readdir t.root)

let gc t ~max_bytes =
  let blobs = blobs t in
  let scanned = List.length blobs in
  let scanned_bytes = List.fold_left (fun a (_, s, _) -> a + s) 0 blobs in
  let deleted = ref 0 and reclaimed = ref 0 in
  if scanned_bytes > max_bytes then begin
    (* least-recently-used first; path breaks atime ties so the
       deletion order (and hence the report) is deterministic *)
    let oldest_first =
      List.sort
        (fun (p1, _, a1) (p2, _, a2) ->
          match compare (a1 : float) a2 with 0 -> compare p1 p2 | c -> c)
        blobs
    in
    let rec evict remaining = function
      | [] -> ()
      | _ when remaining <= max_bytes -> ()
      | (p, size, _) :: tl ->
          (match Sys.remove p with
          | () ->
              incr deleted;
              reclaimed := !reclaimed + size
          | exception Sys_error _ -> ());
          evict (remaining - size) tl
    in
    evict scanned_bytes oldest_first
  end;
  { scanned; scanned_bytes; deleted = !deleted; reclaimed_bytes = !reclaimed }

let pp_gc_report ppf r =
  Format.fprintf ppf
    "gc: scanned %d blobs (%d bytes), deleted %d (%d bytes reclaimed)"
    r.scanned r.scanned_bytes r.deleted r.reclaimed_bytes

let pipeline_store t =
  {
    Shell_core.Pipeline.save = (fun key blob -> save t key blob);
    load = (fun key -> load t key);
  }

let attach t = Shell_core.Pipeline.set_store (Some (pipeline_store t))
let detach () = Shell_core.Pipeline.set_store None
