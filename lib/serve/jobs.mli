(** Job execution shared by the CLI and the daemon.

    The serve contract is byte-identity: a job submitted over the
    socket returns exactly the bytes the equivalent CLI invocation
    prints. Both front ends call these functions, so the property
    holds by construction. Everything returns [(_, Diag.t) result] —
    only the CLI maps errors to [exit 1]. *)

module C = Shell_core
module F = Shell_fabric
module L = Shell_locking
module A = Shell_attacks

val netlist_of_bench :
  string -> (Shell_netlist.Netlist.t, Shell_util.Diag.t) result
(** Bundled benchmarks: the catalog plus soc/xbar/desx. *)

val default_tfr : string -> (string list * string list * string) option
(** Per-benchmark SheLL TfR defaults: (route, lgc, label). *)

val style_id : F.Style.t -> string
(** Wire spelling ("openfpga" | "fabulous" | "muxchain") — the same
    strings the CLI's --style enum accepts. *)

val style_of_string : string -> (F.Style.t, Shell_util.Diag.t) result

val locked_of_spec :
  seed:int ->
  Shell_netlist.Netlist.t ->
  string ->
  (L.Locked.t, Shell_util.Diag.t) result
(** Parse-and-apply a pure locking scheme spec (xor:N, rlut:N, hlut:N,
    mux:N, muxlut:N). *)

val lock_flow :
  Protocol.lock_spec -> (C.Flow.result, Shell_util.Diag.t) result
(** Resolve benchmark + TfR and run the full SheLL flow. *)

val lock_render : C.Flow.result -> string
(** The `shell lock` stdout bytes: summary + verify line. *)

val lock_output : Protocol.lock_spec -> (string, Shell_util.Diag.t) result

val attack_output :
  Protocol.attack_spec -> (string, Shell_util.Diag.t) result
(** The `shell attack` stdout bytes: banner + verdict. *)

val battery_matrix :
  ?jobs:int ->
  Protocol.battery_spec ->
  (A.Battery.matrix, Shell_util.Diag.t) result

val battery_render_json : A.Battery.matrix -> string
(** The `shell battery --json` stdout bytes. *)

val battery_output :
  ?jobs:int -> Protocol.battery_spec -> (string, Shell_util.Diag.t) result

val fuzz_output :
  ?jobs:int -> Protocol.fuzz_spec -> (string, Shell_util.Diag.t) result
(** Full oracle battery, no shrinking, no reproducer files (a shared
    daemon shouldn't write into its working directory for a remote
    client). *)

val lint_subject_of_result : C.Flow.result -> Shell_lint.Lint.subject
(** Rebuild the subject the pipeline's lint pass checks, artifacts
    included. *)

val lint_output :
  ?jobs:int -> Protocol.lint_spec -> (string, Shell_util.Diag.t) result
(** JSON lint report over bundled benchmarks (optionally locked
    first). *)

val run : ?jobs:int -> Protocol.job -> (string, Shell_util.Diag.t) result
(** Dispatch any protocol job to its executor. *)
