module P = Protocol
module J = Shell_util.Jsonw

type t = { fd : Unix.file_descr; fr : J.framer; mutable next_id : int }

let connect addr =
  match addr with
  | Server.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      { fd; fr = J.framer (); next_id = 1 }
  | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (ip, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      { fd; fr = J.framer (); next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  go 0

let read_frame t =
  let buf = Bytes.create 8192 in
  let rec go () =
    match J.next t.fr with
    | `Frame body -> Ok body
    | `Error e -> Error e
    | `Await -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> Error "connection closed by server"
        | n ->
            J.feed t.fr buf 0 n;
            go ()
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  go ()

(* One request, one response, strictly in order per connection — so
   the next frame is this request's answer. The id is still checked:
   a mismatch means the stream is out of sync and unusable. *)
let call t mk =
  let id = t.next_id in
  t.next_id <- id + 1;
  let req = mk id in
  match write_all t.fd (P.request_frame req) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
      match read_frame t with
      | Error _ as e -> e
      | Ok body -> (
          match P.response_of_frame body with
          | Error _ as e -> e
          | Ok resp ->
              let rid =
                match resp with
                | P.Result { id; _ }
                | P.Rejected { id; _ }
                | P.Failed { id; _ }
                | P.Status_r { id; _ }
                | P.Metrics_r { id; _ }
                | P.Pong { id; _ } ->
                    id
              in
              (* id 0 is the server's channel for protocol breaches it
                 can't attribute to a request *)
              if rid = id || rid = 0 then Ok resp
              else
                Error
                  (Printf.sprintf "response id %d for request %d: desynced"
                     rid id)))

let with_connection addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let submit t ?(priority = 0) job =
  call t (fun id -> P.Submit { id; priority; job })

let status t =
  match call t (fun id -> P.Status { id }) with
  | Ok (P.Status_r { info; _ }) -> Ok info
  | Ok _ -> Error "unexpected response to status"
  | Error _ as e -> e

let metrics t =
  match call t (fun id -> P.Metrics { id }) with
  | Ok (P.Metrics_r { text; _ }) -> Ok text
  | Ok _ -> Error "unexpected response to metrics"
  | Error _ as e -> e

let ping t =
  match call t (fun id -> P.Ping { id }) with
  | Ok (P.Pong { server_version; _ }) -> Ok server_version
  | Ok _ -> Error "unexpected response to ping"
  | Error _ as e -> e

let shutdown t =
  match call t (fun id -> P.Shutdown { id }) with
  | Ok (P.Result { output; _ }) -> Ok output
  | Ok _ -> Error "unexpected response to shutdown"
  | Error _ as e -> e
