module P = Protocol
module J = Shell_util.Jsonw
module Obs = Shell_util.Obs
module Clock = Shell_util.Clock
module Diag = Shell_util.Diag
module Pipeline = Shell_core.Pipeline

type address = Unix_sock of string | Tcp of string * int

let address_of_string s =
  if String.length s = 0 then Error "empty address"
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))
    | None -> Ok (Unix_sock s)

let address_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type config = {
  address : address;
  queue_cap : int;
  max_frame : int;
  max_seconds : float;
  store_dir : string option;
  cache_max_bytes : int option;
  log : bool;
}

let default_config address =
  {
    address;
    queue_cap = 64;
    max_frame = J.default_max_frame;
    max_seconds = 600.0;
    store_dir = None;
    cache_max_bytes = None;
    log = false;
  }

(* Per-job budget caps: a client can ask for any budget, the daemon
   clamps what it is willing to spend. Only time budgets are clamped —
   DIP/conflict/vector ceilings are memory-safe and deterministic. *)
let clamp_job max_seconds = function
  | P.Attack a -> P.Attack { a with P.seconds = Float.min a.P.seconds max_seconds }
  | P.Battery b ->
      P.Battery { b with P.bt_seconds = Float.min b.P.bt_seconds max_seconds }
  | (P.Lock _ | P.Fuzz _ | P.Lint _) as j -> j

(* ---------------- connections ---------------- *)

type conn = {
  fd : Unix.file_descr;
  fr : J.framer;
  out : Buffer.t;
  mutable written : int;  (* flushed prefix of [out] *)
  mutable alive : bool;
  mutable draining : bool;  (* close once [out] is flushed *)
}

let pending c = Buffer.length c.out - c.written

let send c resp =
  if c.alive then Buffer.add_string c.out (P.response_frame resp)

type pending_job = { pconn : conn; pid : int; pjob : P.job }

type stats = {
  mutable jobs_done : int;
  mutable jobs_failed : int;
  mutable jobs_rejected : int;
  spans : (string, int * float) Hashtbl.t;
}

(* ---------------- server ---------------- *)

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  queue : pending_job Admission.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  stats : stats;
  t0 : float;
  mutable stop : bool;
}

let logf t fmt =
  if t.cfg.log then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let listen_socket = function
  | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let status_info t =
  let hits, misses = Pipeline.cache_stats () in
  let job_spans =
    Hashtbl.fold
      (fun kind (runs, total_s) acc -> { P.kind; runs; total_s } :: acc)
      t.stats.spans []
    |> List.sort (fun a b -> compare a.P.kind b.P.kind)
  in
  {
    P.queue_depth = Admission.depth t.queue;
    queue_cap = Admission.cap t.queue;
    running = not t.stop;
    jobs_done = t.stats.jobs_done;
    jobs_failed = t.stats.jobs_failed;
    jobs_rejected = t.stats.jobs_rejected;
    cache_hits = hits;
    cache_misses = misses;
    uptime_s = Clock.now () -. t.t0;
    job_spans;
  }

let handle_request t c = function
  | P.Ping { id } -> send c (P.Pong { id; server_version = P.version })
  | P.Status { id } -> send c (P.Status_r { id; info = status_info t })
  | P.Metrics { id } ->
      send c (P.Metrics_r { id; text = Obs.to_prometheus (Obs.snapshot ()) })
  | P.Shutdown { id } ->
      logf t "serve: shutdown requested";
      t.stop <- true;
      send c (P.Result { id; output = "shutting down\n" })
  | P.Submit { id; priority; job } -> (
      let job = clamp_job t.cfg.max_seconds job in
      match Admission.push t.queue ~priority { pconn = c; pid = id; pjob = job }
      with
      | Ok () ->
          logf t "serve: admitted %s job #%d (priority %d, depth %d)"
            (P.job_kind job) id priority (Admission.depth t.queue)
      | Error d ->
          t.stats.jobs_rejected <- t.stats.jobs_rejected + 1;
          send c (P.Rejected { id; reason = Diag.to_string d }))

let close_conn t c =
  if c.alive then begin
    c.alive <- false;
    Hashtbl.remove t.conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* A protocol breach (unparseable frame, oversized frame) gets one
   diagnostic response, then the connection drains and closes: inside
   a length-prefixed byte stream there is no resynchronisation
   point. *)
let breach t c message =
  send c (P.Failed { id = 0; message });
  c.draining <- true;
  logf t "serve: protocol breach: %s" message

let read_conn t c =
  let buf = Bytes.create 8192 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t c
  | 0 -> if pending c = 0 then close_conn t c else c.draining <- true
  | n ->
      J.feed c.fr buf 0 n;
      let rec drain () =
        if c.alive && not c.draining then
          match J.next c.fr with
          | `Await -> ()
          | `Error e -> breach t c e
          | `Frame body -> (
              match P.request_of_frame body with
              | Ok req ->
                  handle_request t c req;
                  drain ()
              | Error e -> breach t c e)
      in
      drain ()

let write_conn t c =
  let len = pending c in
  if len > 0 then begin
    let bytes = Bytes.unsafe_of_string (Buffer.contents c.out) in
    match Unix.write c.fd bytes c.written len with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn t c
    | n ->
        c.written <- c.written + n;
        if c.written = Buffer.length c.out then begin
          Buffer.clear c.out;
          c.written <- 0;
          if c.draining then close_conn t c
        end
  end
  else if c.draining then close_conn t c

let accept_conn t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Unix.set_nonblock fd;
      let c =
        {
          fd;
          fr = J.framer ~max_frame:t.cfg.max_frame ();
          out = Buffer.create 256;
          written = 0;
          alive = true;
          draining = false;
        }
      in
      Hashtbl.replace t.conns fd c

(* Jobs run inline in the event loop, one at a time: parallelism lives
   inside a job (the domain pool), and serializing jobs is what keeps
   outputs and cache-counter observations deterministic. While a job
   runs, waiting clients queue in kernel buffers. *)
let run_one_job t =
  match Admission.pop t.queue with
  | None -> ()
  | Some { pconn; pid; pjob } ->
      let kind = P.job_kind pjob in
      logf t "serve: running %s job #%d" kind pid;
      let t0 = Clock.now () in
      let result =
        match Obs.with_span ("serve.job." ^ kind) (fun () -> Jobs.run pjob) with
        | r -> r
        | exception Diag.Error d -> Error d
        | exception exn -> Error (Diag.make ~pass:"serve" (Printexc.to_string exn))
      in
      let dt = Clock.now () -. t0 in
      let runs, total =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt t.stats.spans kind)
      in
      Hashtbl.replace t.stats.spans kind (runs + 1, total +. dt);
      (match result with
      | Ok output ->
          t.stats.jobs_done <- t.stats.jobs_done + 1;
          send pconn (P.Result { id = pid; output })
      | Error d ->
          t.stats.jobs_failed <- t.stats.jobs_failed + 1;
          send pconn (P.Failed { id = pid; message = Diag.to_string d }))

let conn_list t = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []

let create cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> () (* no SIGPIPE on this platform *));
  (match cfg.store_dir with
  | Some dir ->
      let store = Store.create ~root:dir in
      (* prune before attaching: a daemon restarted against a bloated
         spill directory starts back under its cap *)
      (match cfg.cache_max_bytes with
      | Some max_bytes ->
          let rep = Store.gc store ~max_bytes in
          if cfg.log then
            Printf.eprintf "serve: %s\n%!"
              (Format.asprintf "%a" Store.pp_gc_report rep)
      | None -> ());
      Store.attach store
  | None -> ());
  let listen_fd = listen_socket cfg.address in
  {
    cfg;
    listen_fd;
    queue = Admission.create ~cap:cfg.queue_cap;
    conns = Hashtbl.create 16;
    stats =
      {
        jobs_done = 0;
        jobs_failed = 0;
        jobs_rejected = 0;
        spans = Hashtbl.create 8;
      };
    t0 = Clock.now ();
    stop = false;
  }

let shutdown_cleanup t =
  List.iter (fun c -> close_conn t c) (conn_list t);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Store.detach ()

let serve ?(on_ready = fun () -> ()) cfg =
  let was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  let t = create cfg in
  logf t "serve: listening on %s (queue cap %d)"
    (address_to_string cfg.address) cfg.queue_cap;
  on_ready ();
  let finished () =
    t.stop && Admission.is_empty t.queue
    && List.for_all (fun c -> pending c = 0) (conn_list t)
  in
  while not (finished ()) do
    let conns = conn_list t in
    let rds = t.listen_fd :: List.map (fun c -> c.fd) conns in
    let wrs =
      List.filter_map
        (fun c -> if pending c > 0 || c.draining then Some c.fd else None)
        conns
    in
    let timeout = if Admission.is_empty t.queue then 0.2 else 0.0 in
    match Unix.select rds wrs [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if List.mem t.listen_fd readable then accept_conn t;
        List.iter
          (fun c ->
            if c.alive && List.mem c.fd readable then read_conn t c)
          conns;
        List.iter
          (fun c ->
            if c.alive && List.mem c.fd writable then write_conn t c)
          conns;
        if not t.stop then run_one_job t
  done;
  shutdown_cleanup t;
  Obs.set_enabled was_enabled
