module J = Shell_util.Jsonw

let version = 1

type lock_spec = {
  bench : string;
  style : string;
  route : string list;
  lgc : string list;
  seed : int;
}

type attack_spec = {
  target : lock_spec;
  attack : string;
  dips : int;
  conflicts : int;
  seconds : float;
  vectors : int;
}

type battery_spec = {
  benches : string list;
  schemes : string list;
  attacks : string list;
  bt_seed : int;
  bt_dips : int;
  bt_conflicts : int;
  bt_seconds : float;
  bt_vectors : int;
}

type fuzz_spec = { fz_seed : int; cases : int }

type lint_spec = {
  lint_benches : string list;
  locked : bool;
  lint_style : string;
  lint_seed : int;
}

type job =
  | Lock of lock_spec
  | Attack of attack_spec
  | Battery of battery_spec
  | Fuzz of fuzz_spec
  | Lint of lint_spec

let job_kind = function
  | Lock _ -> "lock"
  | Attack _ -> "attack"
  | Battery _ -> "battery"
  | Fuzz _ -> "fuzz"
  | Lint _ -> "lint"

type request =
  | Submit of { id : int; priority : int; job : job }
  | Status of { id : int }
  | Metrics of { id : int }
  | Ping of { id : int }
  | Shutdown of { id : int }

type job_span = { kind : string; runs : int; total_s : float }

type status_info = {
  queue_depth : int;
  queue_cap : int;
  running : bool;
  jobs_done : int;
  jobs_failed : int;
  jobs_rejected : int;
  cache_hits : int;
  cache_misses : int;
  uptime_s : float;
  job_spans : job_span list;
}

type response =
  | Result of { id : int; output : string }
  | Rejected of { id : int; reason : string }
  | Failed of { id : int; message : string }
  | Status_r of { id : int; info : status_info }
  | Metrics_r of { id : int; text : string }
  | Pong of { id : int; server_version : int }

(* ---------------- encoding ---------------- *)

let strs l = J.Arr (List.map (fun s -> J.Str s) l)

let lock_spec_json (s : lock_spec) =
  J.Obj
    [
      ("bench", J.Str s.bench);
      ("style", J.Str s.style);
      ("route", strs s.route);
      ("lgc", strs s.lgc);
      ("seed", J.Int s.seed);
    ]

let job_json = function
  | Lock s -> J.Obj [ ("lock", lock_spec_json s) ]
  | Attack a ->
      J.Obj
        [
          ( "attack",
            J.Obj
              [
                ("target", lock_spec_json a.target);
                ("name", J.Str a.attack);
                ("dips", J.Int a.dips);
                ("conflicts", J.Int a.conflicts);
                ("seconds", J.float ~dec:3 a.seconds);
                ("vectors", J.Int a.vectors);
              ] );
        ]
  | Battery b ->
      J.Obj
        [
          ( "battery",
            J.Obj
              [
                ("benches", strs b.benches);
                ("schemes", strs b.schemes);
                ("attacks", strs b.attacks);
                ("seed", J.Int b.bt_seed);
                ("dips", J.Int b.bt_dips);
                ("conflicts", J.Int b.bt_conflicts);
                ("seconds", J.float ~dec:3 b.bt_seconds);
                ("vectors", J.Int b.bt_vectors);
              ] );
        ]
  | Fuzz f ->
      J.Obj
        [
          ( "fuzz",
            J.Obj [ ("seed", J.Int f.fz_seed); ("cases", J.Int f.cases) ] );
        ]
  | Lint l ->
      J.Obj
        [
          ( "lint",
            J.Obj
              [
                ("benches", strs l.lint_benches);
                ("locked", J.Bool l.locked);
                ("style", J.Str l.lint_style);
                ("seed", J.Int l.lint_seed);
              ] );
        ]

let msg ty id fields =
  J.Obj (("v", J.Int version) :: ("type", J.Str ty) :: ("id", J.Int id) :: fields)

let request_json = function
  | Submit { id; priority; job } ->
      msg "submit" id [ ("priority", J.Int priority); ("job", job_json job) ]
  | Status { id } -> msg "status" id []
  | Metrics { id } -> msg "metrics" id []
  | Ping { id } -> msg "ping" id []
  | Shutdown { id } -> msg "shutdown" id []

let status_info_json (i : status_info) =
  J.Obj
    [
      ("queue_depth", J.Int i.queue_depth);
      ("queue_cap", J.Int i.queue_cap);
      ("running", J.Bool i.running);
      ("jobs_done", J.Int i.jobs_done);
      ("jobs_failed", J.Int i.jobs_failed);
      ("jobs_rejected", J.Int i.jobs_rejected);
      ("cache_hits", J.Int i.cache_hits);
      ("cache_misses", J.Int i.cache_misses);
      ("uptime_s", J.float ~dec:3 i.uptime_s);
      ( "job_spans",
        J.Arr
          (List.map
             (fun sp ->
               J.Obj
                 [
                   ("kind", J.Str sp.kind);
                   ("runs", J.Int sp.runs);
                   ("total_s", J.float ~dec:3 sp.total_s);
                 ])
             i.job_spans) );
    ]

let response_json = function
  | Result { id; output } -> msg "result" id [ ("output", J.Str output) ]
  | Rejected { id; reason } -> msg "rejected" id [ ("reason", J.Str reason) ]
  | Failed { id; message } -> msg "failed" id [ ("message", J.Str message) ]
  | Status_r { id; info } -> msg "status" id [ ("info", status_info_json info) ]
  | Metrics_r { id; text } -> msg "metrics" id [ ("text", J.Str text) ]
  | Pong { id; server_version } ->
      msg "pong" id [ ("server_version", J.Int server_version) ]

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind

let field name = function
  | J.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error "expected an object"

let as_int name = function
  | J.Int v -> Ok v
  | J.Num s -> (
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "field %S: not an integer" name))
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let as_float name = function
  | J.Int v -> Ok (float_of_int v)
  | J.Num s -> (
      match float_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "field %S: not a number" name))
  | _ -> Error (Printf.sprintf "field %S: expected a number" name)

let as_str name = function
  | J.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let as_bool name = function
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected a bool" name)

let as_strs name = function
  | J.Arr items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | J.Str s :: tl -> go (s :: acc) tl
        | _ -> Error (Printf.sprintf "field %S: expected strings" name)
      in
      go [] items
  | _ -> Error (Printf.sprintf "field %S: expected an array" name)

let int_field name j = let* v = field name j in as_int name v
let float_field name j = let* v = field name j in as_float name v
let str_field name j = let* v = field name j in as_str name v
let bool_field name j = let* v = field name j in as_bool name v
let strs_field name j = let* v = field name j in as_strs name v

let lock_spec_of_json j =
  let* bench = str_field "bench" j in
  let* style = str_field "style" j in
  let* route = strs_field "route" j in
  let* lgc = strs_field "lgc" j in
  let* seed = int_field "seed" j in
  Ok { bench; style; route; lgc; seed }

let job_of_json j =
  match j with
  | J.Obj [ (kind, body) ] -> (
      match kind with
      | "lock" ->
          let* s = lock_spec_of_json body in
          Ok (Lock s)
      | "attack" ->
          let* t = field "target" body in
          let* target = lock_spec_of_json t in
          let* attack = str_field "name" body in
          let* dips = int_field "dips" body in
          let* conflicts = int_field "conflicts" body in
          let* seconds = float_field "seconds" body in
          let* vectors = int_field "vectors" body in
          Ok (Attack { target; attack; dips; conflicts; seconds; vectors })
      | "battery" ->
          let* benches = strs_field "benches" body in
          let* schemes = strs_field "schemes" body in
          let* attacks = strs_field "attacks" body in
          let* bt_seed = int_field "seed" body in
          let* bt_dips = int_field "dips" body in
          let* bt_conflicts = int_field "conflicts" body in
          let* bt_seconds = float_field "seconds" body in
          let* bt_vectors = int_field "vectors" body in
          Ok
            (Battery
               {
                 benches;
                 schemes;
                 attacks;
                 bt_seed;
                 bt_dips;
                 bt_conflicts;
                 bt_seconds;
                 bt_vectors;
               })
      | "fuzz" ->
          let* fz_seed = int_field "seed" body in
          let* cases = int_field "cases" body in
          Ok (Fuzz { fz_seed; cases })
      | "lint" ->
          let* lint_benches = strs_field "benches" body in
          let* locked = bool_field "locked" body in
          let* lint_style = str_field "style" body in
          let* lint_seed = int_field "seed" body in
          Ok (Lint { lint_benches; locked; lint_style; lint_seed })
      | k -> Error (Printf.sprintf "unknown job kind %S" k))
  | _ -> Error "job: expected a single-field object"

(* Both decoders reject foreign protocol versions up front: a v2 peer
   gets one clean error instead of a cascade of missing-field noise. *)
let check_version j =
  let* v = int_field "v" j in
  if v = version then Ok ()
  else Error (Printf.sprintf "protocol version %d (this side speaks %d)" v version)

let request_of_json j =
  let* () = check_version j in
  let* ty = str_field "type" j in
  let* id = int_field "id" j in
  match ty with
  | "submit" ->
      let* priority = int_field "priority" j in
      let* jb = field "job" j in
      let* job = job_of_json jb in
      Ok (Submit { id; priority; job })
  | "status" -> Ok (Status { id })
  | "metrics" -> Ok (Metrics { id })
  | "ping" -> Ok (Ping { id })
  | "shutdown" -> Ok (Shutdown { id })
  | ty -> Error (Printf.sprintf "unknown request type %S" ty)

let status_info_of_json j =
  let* queue_depth = int_field "queue_depth" j in
  let* queue_cap = int_field "queue_cap" j in
  let* running = bool_field "running" j in
  let* jobs_done = int_field "jobs_done" j in
  let* jobs_failed = int_field "jobs_failed" j in
  let* jobs_rejected = int_field "jobs_rejected" j in
  let* cache_hits = int_field "cache_hits" j in
  let* cache_misses = int_field "cache_misses" j in
  let* uptime_s = float_field "uptime_s" j in
  let* spans = field "job_spans" j in
  let* job_spans =
    match spans with
    | J.Arr items ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | it :: tl ->
              let* kind = str_field "kind" it in
              let* runs = int_field "runs" it in
              let* total_s = float_field "total_s" it in
              go ({ kind; runs; total_s } :: acc) tl
        in
        go [] items
    | _ -> Error "field \"job_spans\": expected an array"
  in
  Ok
    {
      queue_depth;
      queue_cap;
      running;
      jobs_done;
      jobs_failed;
      jobs_rejected;
      cache_hits;
      cache_misses;
      uptime_s;
      job_spans;
    }

let response_of_json j =
  let* () = check_version j in
  let* ty = str_field "type" j in
  let* id = int_field "id" j in
  match ty with
  | "result" ->
      let* output = str_field "output" j in
      Ok (Result { id; output })
  | "rejected" ->
      let* reason = str_field "reason" j in
      Ok (Rejected { id; reason })
  | "failed" ->
      let* message = str_field "message" j in
      Ok (Failed { id; message })
  | "status" ->
      let* inf = field "info" j in
      let* info = status_info_of_json inf in
      Ok (Status_r { id; info })
  | "metrics" ->
      let* text = str_field "text" j in
      Ok (Metrics_r { id; text })
  | "pong" ->
      let* server_version = int_field "server_version" j in
      Ok (Pong { id; server_version })
  | ty -> Error (Printf.sprintf "unknown response type %S" ty)

let request_of_frame body =
  let* j = J.of_string body in
  request_of_json j

let response_of_frame body =
  let* j = J.of_string body in
  response_of_json j

let request_frame ?max_frame r = J.frame ?max_frame (request_json r)
let response_frame ?max_frame r = J.frame ?max_frame (response_json r)
