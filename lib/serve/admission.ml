module Diag = Shell_util.Diag

type Diag.payload += Queue_full of { depth : int; cap : int }

let () =
  Diag.register_printer (function
    | Queue_full { depth; cap } ->
        Some (Printf.sprintf "queue_full depth=%d cap=%d" depth cap)
    | _ -> None)

(* Bounded priority queue for job admission. The server is a
   single-threaded event loop (parallelism lives inside job execution,
   on the domain pool), so no locking here. Depth stays small (the
   cap), so a sorted insert beats a heap on simplicity. *)

type 'a entry = { priority : int; seq : int; payload : 'a }
type 'a t = { cap : int; mutable seq : int; mutable entries : 'a entry list }

let create ~cap =
  if cap < 1 then invalid_arg "Admission.create: cap must be positive";
  { cap; seq = 0; entries = [] }

let depth q = List.length q.entries
let cap q = q.cap

(* Higher priority first; FIFO (by admission order) within a
   priority, so equal-priority jobs can't starve each other. *)
let before a b = a.priority > b.priority

let push q ~priority payload =
  let d = depth q in
  if d >= q.cap then
    Diag.error ~pass:"serve"
      ~payload:(Queue_full { depth = d; cap = q.cap })
      "admission queue full"
  else begin
    let e = { priority; seq = q.seq; payload } in
    q.seq <- q.seq + 1;
    let rec insert = function
      | [] -> [ e ]
      | x :: tl when before e x -> e :: x :: tl
      | x :: tl -> x :: insert tl
    in
    q.entries <- insert q.entries;
    Ok ()
  end

let pop q =
  match q.entries with
  | [] -> None
  | e :: tl ->
      q.entries <- tl;
      Some e.payload

let is_empty q = q.entries = []
