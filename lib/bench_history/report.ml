let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A 120x24 polyline over the series, min..max scaled to the viewbox;
   a flat series draws a midline. Coordinates are printed with fixed
   precision so the page is byte-stable. *)
let sparkline values =
  match values with
  | [] | [ _ ] -> ""
  | _ ->
      let w, h, pad = (120.0, 24.0, 2.0) in
      let n = List.length values in
      let lo = List.fold_left min (List.hd values) values in
      let hi = List.fold_left max (List.hd values) values in
      let span = if hi > lo then hi -. lo else 1.0 in
      let pt i v =
        let x = pad +. (w -. 2.0 *. pad) *. float_of_int i /. float_of_int (n - 1) in
        let y = h -. pad -. ((h -. 2.0 *. pad) *. (v -. lo) /. span) in
        Printf.sprintf "%.1f,%.1f" x y
      in
      let points = String.concat " " (List.mapi pt values) in
      Printf.sprintf
        "<svg class=\"spark\" width=\"%.0f\" height=\"%.0f\" \
         viewBox=\"0 0 %.0f %.0f\"><polyline points=\"%s\" fill=\"none\" \
         stroke=\"currentColor\" stroke-width=\"1.2\"/></svg>"
        w h w h points

let style =
  {|body{font-family:system-ui,sans-serif;margin:1.5em;color:#1a1a2e}
h1{font-size:1.4em}h2{font-size:1.15em;border-bottom:1px solid #ccd;
padding-bottom:.2em;margin-top:1.6em}table{border-collapse:collapse;
margin:.6em 0}th,td{padding:.15em .7em;text-align:right;
font-variant-numeric:tabular-nums}th{background:#eef;font-size:.85em}
td.key{text-align:left;font-family:ui-monospace,monospace;font-size:.85em}
tr.drift td{background:#fde8e8}tr.drift td.key::after{content:" \25b2";
color:#c0392b}.spark{color:#4a6fa5;vertical-align:middle}
.note{color:#667;font-size:.85em}.meta{color:#667;font-size:.9em}|}

(* union of keys over a record series, first-appearance order *)
let all_keys proj records =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc (k, _) -> if List.mem k acc then acc else k :: acc)
        acc (proj r))
    [] records
  |> List.rev

let last_two vs =
  match List.rev vs with
  | cur :: prev :: _ -> Some (prev, cur)
  | _ -> None

let int_table b ~caption proj records =
  let keys = all_keys proj records in
  if keys <> [] then begin
    Buffer.add_string b
      (Printf.sprintf
         "<table><tr><th>%s</th><th>trend</th><th>first</th><th>last</th>\
          <th>&Delta; last</th></tr>\n"
         caption);
    List.iter
      (fun key ->
        let series =
          List.filter_map (fun r -> List.assoc_opt key (proj r)) records
        in
        let fvalues = List.map float_of_int series in
        let first = List.hd series in
        let last = List.nth series (List.length series - 1) in
        let delta, drift =
          match last_two series with
          | Some (prev, cur) when cur <> prev -> (cur - prev, true)
          | _ -> (0, false)
        in
        Buffer.add_string b
          (Printf.sprintf
             "<tr%s><td class=\"key\">%s</td><td>%s</td><td>%d</td>\
              <td>%d</td><td>%s</td></tr>\n"
             (if drift then " class=\"drift\"" else "")
             (escape key) (sparkline fvalues) first last
             (if drift then Printf.sprintf "%+d" delta else "")))
      keys;
    Buffer.add_string b "</table>\n"
  end

let time_table b records =
  let keys = all_keys (fun (r : Record.t) -> r.Record.times) records in
  if keys <> [] then begin
    Buffer.add_string b
      "<p class=\"note\">Wall times are machine noise, not gated.</p>\n\
       <table><tr><th>bench</th><th>trend</th><th>first (s)</th>\
       <th>last (s)</th></tr>\n";
    List.iter
      (fun key ->
        let series =
          List.filter_map
            (fun (r : Record.t) -> List.assoc_opt key r.Record.times)
            records
        in
        Buffer.add_string b
          (Printf.sprintf
             "<tr><td class=\"key\">%s</td><td>%s</td><td>%.3f</td>\
              <td>%.3f</td></tr>\n"
             (escape key) (sparkline series) (List.hd series)
             (List.nth series (List.length series - 1))))
      keys;
    Buffer.add_string b "</table>\n"
  end

let html records =
  let b = Buffer.create (1 lsl 14) in
  Buffer.add_string b
    (Printf.sprintf
       "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
        <title>shell bench history</title>\n<style>%s</style></head><body>\n\
        <h1>shell bench history</h1>\n"
       style);
  (match records with
  | [] -> Buffer.add_string b "<p class=\"note\">empty history</p>\n"
  | _ ->
      let first = List.hd records and last_r = List.nth records (List.length records - 1) in
      Buffer.add_string b
        (Printf.sprintf
           "<p class=\"meta\">%d records, commits %s &rarr; %s</p>\n"
           (List.length records)
           (escape first.Record.commit)
           (escape last_r.Record.commit)));
  List.iter
    (fun target ->
      let rs = History.for_target target records in
      Buffer.add_string b
        (Printf.sprintf "<h2>%s <span class=\"meta\">(%d records)</span></h2>\n"
           (escape target) (List.length rs));
      int_table b ~caption:"counter"
        (fun (r : Record.t) -> r.Record.counters)
        rs;
      int_table b ~caption:"span" (fun (r : Record.t) -> r.Record.spans) rs;
      time_table b rs)
    (History.targets records);
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b

let write path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (html records))
