module Diag = Shell_util.Diag

type change = {
  key : string;
  baseline : int option;
  current : int option;
  allowed : bool;
}

type time_drift = {
  bench : string;
  baseline_s : float;
  current_s : float;
  ratio : float;
}

type report = {
  target : string;
  baseline_commit : string;
  counters : change list;
  spans : change list;
  times : time_drift list;
}

type Diag.payload += Perf_drift of report

(* -------- allowlist -------- *)

let allowlist_of_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then None else Some line)

let load_allowlist path =
  match open_in path with
  | exception Sys_error e -> Error (Printf.sprintf "allowlist: %s" e)
  | ic ->
      (* line loop, not [in_channel_length]: the path may be a pipe *)
      let buf = Buffer.create 256 in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (try
             while true do
               Buffer.add_string buf (input_line ic);
               Buffer.add_char buf '\n'
             done
           with End_of_file -> ());
          Ok (allowlist_of_string (Buffer.contents buf)))

let key_matches pat key =
  if String.length pat > 0 && pat.[String.length pat - 1] = '*' then
    let prefix = String.sub pat 0 (String.length pat - 1) in
    String.length key >= String.length prefix
    && String.sub key 0 (String.length prefix) = prefix
  else pat = key

let allows patterns ~target key =
  List.exists
    (fun pat ->
      match String.index_opt pat ':' with
      | Some i ->
          let t = String.sub pat 0 i in
          let p = String.sub pat (i + 1) (String.length pat - i - 1) in
          t = target && key_matches p key
      | None -> key_matches pat key)
    patterns

(* -------- diff -------- *)

(* Both sides are name-sorted; a merge walk yields every key that
   differs, in key order. *)
let diff_assoc allow ~target base cur =
  let rec go acc base cur =
    let change key b c =
      { key; baseline = b; current = c; allowed = allows allow ~target key }
    in
    match (base, cur) with
    | [], [] -> List.rev acc
    | (k, v) :: btl, [] -> go (change k (Some v) None :: acc) btl []
    | [], (k, v) :: ctl -> go (change k None (Some v) :: acc) [] ctl
    | (bk, bv) :: btl, (ck, cv) :: ctl ->
        if bk = ck then
          let acc =
            if bv = cv then acc else change bk (Some bv) (Some cv) :: acc
          in
          go acc btl ctl
        else if bk < ck then go (change bk (Some bv) None :: acc) btl cur
        else go (change ck None (Some cv) :: acc) base ctl
  in
  go [] base cur

let diff ?(allow = []) ?time_tolerance ~baseline (r : Record.t) =
  let target = r.Record.target in
  let counters =
    diff_assoc allow ~target baseline.Record.counters r.Record.counters
  in
  let spans = diff_assoc allow ~target baseline.Record.spans r.Record.spans in
  let times =
    match time_tolerance with
    | None -> []
    | Some tol ->
        List.filter_map
          (fun (bench, current_s) ->
            match List.assoc_opt bench baseline.Record.times with
            | None -> None
            | Some baseline_s when baseline_s <= 0.0 -> None
            | Some baseline_s ->
                let ratio = current_s /. baseline_s in
                if ratio > 1.0 +. tol || ratio < 1.0 /. (1.0 +. tol) then
                  Some { bench; baseline_s; current_s; ratio }
                else None)
          r.Record.times
  in
  { target; baseline_commit = baseline.Record.commit; counters; spans; times }

let unallowed changes = List.filter (fun c -> not c.allowed) changes

let ok r =
  unallowed r.counters = [] && unallowed r.spans = [] && r.times = []

(* -------- rendering -------- *)

let pp_value ppf = function
  | Some v -> Format.fprintf ppf "%d" v
  | None -> Format.pp_print_string ppf "-"

let pp_changes ppf what changes =
  List.iter
    (fun c ->
      Format.fprintf ppf "  %s %-44s %a -> %a%s@," what c.key pp_value
        c.baseline pp_value c.current
        (if c.allowed then "   (allowed)" else ""))
    changes

let pp ppf r =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "target %s vs baseline commit %s:@," r.target
    r.baseline_commit;
  pp_changes ppf "counter" r.counters;
  pp_changes ppf "span   " r.spans;
  List.iter
    (fun d ->
      Format.fprintf ppf "  time    %-44s %.3fs -> %.3fs (x%.2f)@," d.bench
        d.baseline_s d.current_s d.ratio)
    r.times;
  Format.pp_close_box ppf ()

let summary r =
  let nc = List.length (unallowed r.counters) in
  let ns = List.length (unallowed r.spans) in
  let nt = List.length r.times in
  Printf.sprintf "%d counter, %d span, %d wall-time drift(s)" nc ns nt

let to_diag r =
  Diag.make ~context:[ "bench"; r.target ] ~payload:(Perf_drift r)
    (Printf.sprintf "unexplained perf drift vs %s" r.baseline_commit)

let () =
  Diag.register_printer (function
    | Perf_drift r -> Some (summary r)
    | _ -> None)
