(** The recordable bench targets.

    Each target is a fixed, budget-capped workload chosen so that its
    diffable counters — stable Obs metrics plus the {!extra_counters}
    pinned for these specific workloads — are a pure function of the
    committed code: DIP/conflict/vector ceilings bind before any wall
    clock, randomness is seeded, and fan-out rides the deterministic
    domain pool. Wall times are measured and recorded but never part
    of the stable contract. *)

type t = {
  name : string;
  description : string;
  run : jobs:int -> (string * float) list;
      (** Execute the workload at the given job count; returns
          per-benchmark wall seconds, in a deterministic order. *)
}

val all : t list
(** grid, simulate, battery, attacks — registry order. *)

val find : string -> t option
val names : unit -> string list

val extra_counters : string list
(** Unstable-registered counters that {e are} deterministic under
    these capped workloads (solver totals, pass-cache traffic, DIS
    iterations, battery breaks) and therefore ride in each record's
    diffable counter snapshot alongside the stable set. Wall-clock
    histograms are deliberately absent. *)
