(** The one record-producing runner every bench surface routes
    through: run a {!Targets.t} with Obs enabled from a clean slate,
    snapshot the diffable counters and span aggregate, stamp the
    commit id, and orchestrate [--record] / [--check] / [--report]
    against the JSONL history. *)

val commit_id : unit -> string
(** [SHELL_BENCH_COMMIT] when set; otherwise the current git HEAD
    resolved by reading [.git] directly (searching upward from the
    working directory, following [HEAD] refs through loose and packed
    refs — no subprocess); ["unknown"] when neither works. *)

val merge_base_commit : unit -> string option
(** The commit [--against merge-base] compares to:
    [SHELL_BENCH_MERGE_BASE] when set, otherwise the tip of the
    origin default branch read from [.git] (the
    [refs/remotes/origin/HEAD] symref, then [origin/main],
    [origin/master], and the local [main]/[master] heads). This is the
    merge-base approximation available without walking the object
    graph: on a just-forked feature branch the default-branch tip {e
    is} the merge base, and CI pipelines that know better inject the
    exact sha via the env var. [None] when no candidate resolves. *)

val commit_matches : spec:string -> string -> bool
(** Prefix-tolerant commit comparison (either side may be abbreviated,
    as [SHELL_BENCH_COMMIT] often is in CI). Empty strings never
    match. *)

val out_file : dir:string -> string -> string
(** [Filename.concat dir name], creating [dir] first — the shared
    resolver for every bench artifact path. *)

val write_json : dir:string -> string -> Shell_util.Jsonw.t -> string
(** Write a pretty-printed JSON document (trailing newline) under
    [dir]; returns the path written. The single writer behind what
    used to be scattered [open_out "BENCH_*.json"] calls. *)

val run_target : ?commit:string -> jobs:int -> Targets.t -> Record.t
(** Execute one target under freshly-reset, enabled Obs (pass cache
    cleared; prior enablement restored afterwards) and package the
    result: wall times from the target, counters via
    {!Shell_util.Obs.diffable_counters} with {!Targets.extra_counters}
    pinned, spans via {!Shell_util.Obs.span_aggregate} under a
    ["bench.<name>"] root span. *)

type opts = {
  targets : string list;  (** empty = every registered target *)
  jobs : int option;  (** default {!Shell_util.Pool.default_jobs} *)
  out_dir : string;  (** bench artifact directory, default ["."] *)
  history : string option;  (** default [out_dir/BENCH_HISTORY.jsonl] *)
  record : bool;  (** append the new records to the history *)
  check : bool;  (** diff against the last committed record per target *)
  report : string option;  (** write the HTML trend page here *)
  allowlist : string option;  (** intentional-change patterns file *)
  time_tolerance : float option;  (** e.g. [0.5] = +-50%; off if absent *)
  commit : string option;  (** override {!commit_id} *)
  against : string option;
      (** [--check] baseline selector: [Some "merge-base"] diffs
          against the last history record whose commit prefix-matches
          {!merge_base_commit}; any other string is taken as a commit
          (prefix) directly. When the spec cannot be resolved or no
          record matches it, a warning goes to [out] and the last
          record per target is used, as with [None]. *)
}

val default_opts : opts
(** Run everything, record/check/report all off, defaults above. *)

val execute : ?out:(string -> unit) -> opts -> (unit, Shell_util.Diag.t list) result
(** Run the selected targets through {!run_target}, then in order:
    check each fresh record against the history baseline (collecting a
    {!Check.Perf_drift} diagnostic per drifting target), append the
    records when recording, and render the report (which includes the
    just-appended records). Progress lines go to [out] (default
    [print_endline]); [Error] carries every drift found. *)
