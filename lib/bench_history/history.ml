let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    let rec go lineno acc =
      match input_line ic with
      | exception End_of_file -> Ok (List.rev acc)
      | line when String.trim line = "" -> go (lineno + 1) acc
      | line -> (
          match Record.of_line line with
          | Ok r -> go (lineno + 1) (r :: acc)
          | Error e ->
              Error (Printf.sprintf "%s:%d: %s" path lineno e))
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go 1 [])
  end

let append path r =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Record.to_line r);
      output_char oc '\n')

let last ?target records =
  let keep (r : Record.t) =
    match target with None -> true | Some t -> r.Record.target = t
  in
  List.fold_left (fun acc r -> if keep r then Some r else acc) None records

let targets records =
  List.fold_left
    (fun acc (r : Record.t) ->
      if List.mem r.Record.target acc then acc else r.Record.target :: acc)
    [] records
  |> List.rev

let for_target t records =
  List.filter (fun (r : Record.t) -> r.Record.target = t) records
