module J = Shell_util.Jsonw
module Obs = Shell_util.Obs
module Diag = Shell_util.Diag

(* -------- commit identity, without spawning git -------- *)

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let rec find_git_dir dir depth =
  if depth > 8 then None
  else
    let cand = Filename.concat dir ".git" in
    if Sys.file_exists cand && Sys.is_directory cand then Some cand
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_git_dir parent (depth + 1)

let packed_ref git_dir refname =
  Option.bind
    (read_file (Filename.concat git_dir "packed-refs"))
    (fun text ->
      String.split_on_char '\n' text
      |> List.find_map (fun line ->
             match String.index_opt line ' ' with
             | Some i
               when String.sub line (i + 1) (String.length line - i - 1)
                    = refname ->
                 Some (String.sub line 0 i)
             | _ -> None))

let resolve_head git_dir =
  match read_file (Filename.concat git_dir "HEAD") with
  | None -> None
  | Some head -> (
      let head = String.trim head in
      match String.index_opt head ' ' with
      | Some i when String.sub head 0 i = "ref:" ->
          let refname =
            String.trim (String.sub head (i + 1) (String.length head - i - 1))
          in
          let loose =
            Option.map String.trim
              (read_file (Filename.concat git_dir refname))
          in
          (match loose with
          | Some sha when sha <> "" -> Some sha
          | _ -> packed_ref git_dir refname)
      | _ -> if head = "" then None else Some head (* detached *))

let commit_id () =
  match Sys.getenv_opt "SHELL_BENCH_COMMIT" with
  | Some c when String.trim c <> "" -> String.trim c
  | _ -> (
      match find_git_dir (Sys.getcwd ()) 0 with
      | Some git_dir -> (
          match resolve_head git_dir with
          | Some sha -> sha
          | None -> "unknown")
      | None -> "unknown")

let rec resolve_ref git_dir depth refname =
  if depth > 8 then None
  else
    match Option.map String.trim (read_file (Filename.concat git_dir refname)) with
    | Some s when s <> "" -> (
        match String.index_opt s ' ' with
        | Some i when String.sub s 0 i = "ref:" ->
            resolve_ref git_dir (depth + 1)
              (String.trim (String.sub s (i + 1) (String.length s - i - 1)))
        | _ -> Some s)
    | _ -> packed_ref git_dir refname

let merge_base_commit () =
  match Sys.getenv_opt "SHELL_BENCH_MERGE_BASE" with
  | Some c when String.trim c <> "" -> Some (String.trim c)
  | _ -> (
      match find_git_dir (Sys.getcwd ()) 0 with
      | None -> None
      | Some git_dir ->
          List.find_map
            (resolve_ref git_dir 0)
            [
              "refs/remotes/origin/HEAD";
              "refs/remotes/origin/main";
              "refs/remotes/origin/master";
              "refs/heads/main";
              "refs/heads/master";
            ])

let commit_matches ~spec commit =
  spec <> "" && commit <> ""
  &&
  let ls = String.length spec and lc = String.length commit in
  if ls <= lc then String.sub commit 0 ls = spec
  else String.sub spec 0 lc = commit

(* -------- the shared artifact writer -------- *)

let out_file ~dir name =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Filename.concat dir name

let write_json ~dir name doc =
  let path = out_file ~dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string ~indent:2 doc);
      output_char oc '\n');
  path

(* -------- one record -------- *)

let run_target ?commit ~jobs (t : Targets.t) =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Shell_core.Pipeline.clear_cache ();
  let times =
    Fun.protect
      ~finally:(fun () -> Obs.set_enabled was)
      (fun () -> Obs.with_span ("bench." ^ t.Targets.name) (fun () -> t.Targets.run ~jobs))
  in
  let counters =
    Obs.diffable_counters ~extra:Targets.extra_counters (Obs.snapshot ())
  in
  let spans = Obs.span_aggregate (Obs.spans ()) in
  {
    Record.version = Record.version;
    commit = (match commit with Some c -> c | None -> commit_id ());
    target = t.Targets.name;
    jobs;
    times;
    counters;
    spans;
  }

(* -------- orchestration -------- *)

type opts = {
  targets : string list;
  jobs : int option;
  out_dir : string;
  history : string option;
  record : bool;
  check : bool;
  report : string option;
  allowlist : string option;
  time_tolerance : float option;
  commit : string option;
  against : string option;
}

let default_opts =
  {
    targets = [];
    jobs = None;
    out_dir = ".";
    history = None;
    record = false;
    check = false;
    report = None;
    allowlist = None;
    time_tolerance = None;
    commit = None;
    against = None;
  }

let ( let* ) = Result.bind

let resolve_targets names =
  match names with
  | [] -> Ok Targets.all
  | names ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | n :: tl -> (
            match Targets.find n with
            | Some t -> go (t :: acc) tl
            | None ->
                Error
                  [
                    Diag.make ~context:[ "bench" ]
                      (Printf.sprintf "unknown bench target %S (have: %s)" n
                         (String.concat ", " (Targets.names ())));
                  ])
      in
      go [] names

let execute ?(out = print_endline) opts =
  let* targets = resolve_targets opts.targets in
  let jobs =
    match opts.jobs with
    | Some j -> j
    | None -> Shell_util.Pool.default_jobs ()
  in
  let history_path =
    match opts.history with
    | Some p -> p
    | None -> out_file ~dir:opts.out_dir "BENCH_HISTORY.jsonl"
  in
  let* allow =
    match opts.allowlist with
    | None -> Ok []
    | Some path ->
        Result.map_error
          (fun e -> [ Diag.make ~context:[ "bench" ] e ])
          (Check.load_allowlist path)
  in
  let* committed =
    Result.map_error
      (fun e -> [ Diag.make ~context:[ "bench"; "history" ] e ])
      (History.load history_path)
  in
  let records =
    List.map
      (fun t ->
        out (Printf.sprintf "bench %s (jobs=%d)..." t.Targets.name jobs);
        let r = run_target ?commit:opts.commit ~jobs t in
        List.iter
          (fun (name, secs) -> out (Printf.sprintf "  %-28s %8.3f s" name secs))
          r.Record.times;
        out
          (Printf.sprintf "  %d counters, %d span keys"
             (List.length r.Record.counters)
             (List.length r.Record.spans));
        r)
      targets
  in
  let against_sha =
    if not opts.check then None
    else
      match opts.against with
      | None -> None
      | Some "merge-base" -> (
          match merge_base_commit () with
          | Some sha -> Some sha
          | None ->
              out
                "check: --against merge-base unresolvable (no origin default \
                 branch under .git); falling back to last record";
              None)
      | Some spec -> Some spec
  in
  let baseline_for (r : Record.t) =
    let fallback () = History.last ~target:r.Record.target committed in
    match against_sha with
    | None -> fallback ()
    | Some sha -> (
        match
          History.last ~target:r.Record.target
            (List.filter
               (fun (c : Record.t) -> commit_matches ~spec:sha c.Record.commit)
               committed)
        with
        | Some b -> Some b
        | None ->
            out
              (Printf.sprintf
                 "check %s: no record for commit %s in history; falling back \
                  to last record"
                 r.Record.target sha);
            fallback ())
  in
  let drifts =
    if not opts.check then []
    else
      List.filter_map
        (fun (r : Record.t) ->
          match baseline_for r with
          | None ->
              out
                (Printf.sprintf "check %s: no baseline in %s, skipped"
                   r.Record.target history_path);
              None
          | Some baseline ->
              let rep =
                Check.diff ~allow ?time_tolerance:opts.time_tolerance
                  ~baseline r
              in
              if Check.ok rep then begin
                out
                  (Printf.sprintf "check %s: clean vs %s" r.Record.target
                     rep.Check.baseline_commit);
                None
              end
              else begin
                out
                  (Format.asprintf "check %s: DRIFT@.%a" r.Record.target
                     Check.pp rep);
                Some (Check.to_diag rep)
              end)
        records
  in
  if opts.record then
    List.iter
      (fun r ->
        History.append history_path r;
        out (Printf.sprintf "recorded %s -> %s" r.Record.target history_path))
      records;
  (match opts.report with
  | None -> ()
  | Some path ->
      let all =
        if opts.record then committed @ records else committed
      in
      Report.write path all;
      out (Printf.sprintf "report -> %s" path));
  match drifts with [] -> Ok () | ds -> Error ds
