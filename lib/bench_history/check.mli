(** The regression gate: diff a fresh record against the last committed
    one for the same target.

    Stable counters and span aggregates must match {e exactly} — they
    are deterministic by the Obs contract, so any drift is a real
    behavioural change (more solver conflicts, a lost cache hit, an
    extra pass), not noise. Intentional changes ride in through an
    allowlist file; wall times, which are machine noise, are only
    checked when an explicit tolerance band is given. *)

type change = {
  key : string;
  baseline : int option;  (** [None]: key absent from the baseline *)
  current : int option;  (** [None]: key vanished *)
  allowed : bool;
}

type time_drift = {
  bench : string;
  baseline_s : float;
  current_s : float;
  ratio : float;  (** current / baseline *)
}

type report = {
  target : string;
  baseline_commit : string;
  counters : change list;  (** counter keys that differ *)
  spans : change list;  (** span-aggregate keys that differ *)
  times : time_drift list;  (** outside the tolerance band, if any *)
}

type Shell_util.Diag.payload += Perf_drift of report
(** Attached to the diagnostic a failing [--check] raises; a printer
    is registered at module load. *)

val allowlist_of_string : string -> string list
(** Parse allowlist text: one pattern per line, [#] comments and blank
    lines skipped. A pattern is [key] (any target) or [target:key]; a
    trailing [*] matches any suffix. *)

val load_allowlist : string -> (string list, string) result
(** {!allowlist_of_string} on a file; missing file is an error. *)

val allows : string list -> target:string -> string -> bool
(** Does any pattern cover counter/span [key] of [target]? *)

val diff :
  ?allow:string list ->
  ?time_tolerance:float ->
  baseline:Record.t ->
  Record.t ->
  report
(** Compare the stable parts key by key. [time_tolerance] (e.g. [0.5]
    for +-50%) enables wall-time checking of benches present in both
    records; omitted, times are ignored. *)

val ok : report -> bool
(** No unallowed counter/span change and no time drift. *)

val to_diag : report -> Shell_util.Diag.t
(** A [Perf_drift]-carrying diagnostic summarizing the report. *)

val pp : Format.formatter -> report -> unit
(** Human-readable drift table ([old -> new] per key, allowed changes
    annotated). *)
