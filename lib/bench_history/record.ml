module J = Shell_util.Jsonw

type t = {
  version : int;
  commit : string;
  target : string;
  jobs : int;
  times : (string * float) list;
  counters : (string * int) list;
  spans : (string * int) list;
}

let version = 1

let ints kvs = J.Obj (List.map (fun (k, v) -> (k, J.Int v)) kvs)

let stable_json r =
  J.Obj
    [
      ("version", J.Int r.version);
      ("target", J.Str r.target);
      ("counters", ints r.counters);
      ("spans", ints r.spans);
    ]

(* A NaN/inf wall time would render as [Null] ([Jsonw.float]'s only
   option — JSON has no non-finite numbers), and the strict parser
   below would then reject the whole committed line forever. Clamp at
   record time: a zero time is a visible anomaly in the trend page, a
   poisoned history is a broken [--check]. *)
let finite v = if Float.is_finite v then v else 0.0

let json r =
  J.Obj
    [
      ("version", J.Int r.version);
      ("commit", J.Str r.commit);
      ("target", J.Str r.target);
      ("jobs", J.Int r.jobs);
      ( "times",
        J.Obj (List.map (fun (k, v) -> (k, J.float ~dec:4 (finite v))) r.times)
      );
      ("counters", ints r.counters);
      ("spans", ints r.spans);
    ]

let to_line r = J.to_string (json r)

(* -------- parsing (strict enough for our own output) -------- *)

let ( let* ) = Result.bind

let field name = function
  | J.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error "expected an object"

let as_int name = function
  | J.Int v -> Ok v
  | J.Num s -> (
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "field %S: not an integer" name))
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let as_str name = function
  | J.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let as_float name = function
  | J.Int v -> Ok (float_of_int v)
  | J.Num s -> (
      match float_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "field %S: not a number" name))
  | _ -> Error (Printf.sprintf "field %S: expected a number" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
      let* y = f x in
      let* ys = map_result f tl in
      Ok (y :: ys)

(* Qualify inner keys so a bad value names its exact field: a broken
   line diagnoses as e.g. [field "times.grid": expected a number]
   (and {!History.load} prefixes the file/line position). *)
let as_assoc name conv = function
  | J.Obj kvs ->
      map_result
        (fun (k, v) ->
          Result.map (fun v -> (k, v)) (conv (name ^ "." ^ k) v))
        kvs
  | _ -> Error (Printf.sprintf "field %S: expected an object" name)

let of_json j =
  let* v = field "version" j in
  let* version = as_int "version" v in
  let* c = field "commit" j in
  let* commit = as_str "commit" c in
  let* t = field "target" j in
  let* target = as_str "target" t in
  let* jb = field "jobs" j in
  let* jobs = as_int "jobs" jb in
  let* tm = field "times" j in
  let* times = as_assoc "times" as_float tm in
  let* cs = field "counters" j in
  let* counters = as_assoc "counters" as_int cs in
  let* sp = field "spans" j in
  let* spans = as_assoc "spans" as_int sp in
  Ok { version; commit; target; jobs; times; counters; spans }

let of_line line =
  let* j = J.of_string line in
  of_json j
