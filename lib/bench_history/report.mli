(** Static HTML trend page over the JSONL history.

    One self-contained document — inline CSS, inline SVG sparklines,
    no scripts, no external fetches, no timestamps (the same history
    renders to the same bytes). Per target: a counter table (one row
    per counter/span key, sparkline across records, first/last values)
    with rows whose value moved between the last two records flagged
    as regressions, and a separate wall-time table labelled as noisy. *)

val html : Record.t list -> string
(** Render a full page from records in history (chronological) order. *)

val write : string -> Record.t list -> unit
(** [html] to a file. *)
