module N = Shell_netlist
module F = Shell_fabric
module L = Shell_locking
module A = Shell_attacks
module C = Shell_core
module Circ = Shell_circuits
module Pool = Shell_util.Pool
module Obs = Shell_util.Obs

type t = {
  name : string;
  description : string;
  run : jobs:int -> (string * float) list;
}

let time_wall f =
  let t0 = Shell_util.Clock.now () in
  let r = f () in
  (r, Shell_util.Clock.now () -. t0)

(* Unstable-registered counters that the capped workloads below make
   deterministic: the solver runs under conflict ceilings with seeded
   phases, DIS loops under DIP ceilings, the pass cache is single-
   flight (exactly one miss per key at any job count), and battery /
   portfolio verdicts are cap-bound. Wall-clock histograms
   (attack_solve_us, pool_*_us) must never appear here. *)
let extra_counters =
  [
    "solver_solve_calls";
    "solver_decisions";
    "solver_propagations";
    "solver_conflicts";
    "solver_restarts";
    "solver_learned_len";
    "attack_dis_iterations";
    "pipeline_cache_hits";
    "pipeline_cache_misses";
    "pipeline_cache_bytes";
    "battery_broken";
    "portfolio_conflicts_at_win";
  ]

(* Budgets sized so the DIP/conflict/vector caps bind long before the
   wall clock — the determinism precondition of the battery matrix. *)
let capped_budget =
  A.Attack.budget ~max_dips:32 ~max_conflicts:60_000 ~time_limit:120.0
    ~vectors:256 ()

(* ---- grid: locking flows over the (circuit x style) grid ---- *)

let grid_circuits = [ "FIR"; "SPMV" ]

let run_grid ~jobs =
  let entries =
    List.filter_map Circ.Catalog.find grid_circuits
  in
  let cells =
    Array.of_list
      (List.concat_map
         (fun (e : Circ.Catalog.entry) ->
           List.map (fun style -> (e, style)) F.Style.all)
         entries)
  in
  let rows =
    Pool.mapi ~jobs
      (fun _ ((e : Circ.Catalog.entry), style) ->
        let nl = e.Circ.Catalog.netlist () in
        let t = e.Circ.Catalog.tfr_shell in
        let cfg =
          {
            (C.Flow.shell_config
               ~target:
                 (C.Flow.Fixed
                    {
                      route = t.Circ.Catalog.route;
                      lgc = t.Circ.Catalog.lgc;
                      label = t.Circ.Catalog.label;
                    })
               ())
            with
            C.Flow.style;
            shrink = true;
          }
        in
        let _, secs = time_wall (fun () -> ignore (C.Flow.run cfg nl)) in
        (e.Circ.Catalog.name ^ "/" ^ F.Style.name style, secs))
      cells
  in
  Array.to_list rows

(* ---- simulate: equivalence checks + packed word stepping ---- *)

let run_simulate ~jobs =
  let rows =
    Pool.mapi ~jobs
      (fun _ (e : Circ.Catalog.entry) ->
        let _, secs =
          time_wall (fun () ->
              let nl = e.Circ.Catalog.netlist () in
              (match N.Equiv.check ~vectors:128 nl nl with
              | N.Equiv.Equivalent -> ()
              | N.Equiv.Counterexample _ -> assert false);
              let simw = N.Simw.create nl in
              let n_in = List.length (N.Netlist.inputs nl) in
              let rng = Shell_util.Rng.create 0x6d1 in
              let packed =
                Shell_util.Rng.vectors_packed rng ~vectors:(4 * N.Simw.width)
                  ~bits:n_in
              in
              Array.iter (fun w -> ignore (N.Simw.step simw w)) packed)
        in
        (e.Circ.Catalog.name, secs))
      (Array.of_list Circ.Catalog.all)
  in
  Array.to_list rows

(* ---- battery: the full attack registry on a locked crossbar ---- *)

let xbar4 () = Circ.Axi_xbar.netlist ~channels:4 ~data_width:8 ()

let battery_subjects () =
  List.map
    (fun (sname, mk) ->
      let nl = xbar4 () in
      A.Attack.subject ~label:("xbar4/" ^ sname) ~original:nl (mk nl))
    [
      ("xor:8", fun nl -> L.Schemes.xor_keys ~seed:1 ~bits:8 nl);
      ("mux:8", fun nl -> L.Schemes.mux_routing ~seed:1 ~width:8 nl);
    ]

let run_battery ~jobs =
  let subjects = battery_subjects () in
  let _, secs =
    time_wall (fun () ->
        ignore (A.Battery.run ~jobs ~budget:capped_budget subjects))
  in
  [ ("matrix", secs) ]

(* ---- attacks: the two DIP-loop attacks, individually timed ---- *)

let run_attacks ~jobs:_ =
  let nl = xbar4 () in
  let subject =
    A.Attack.subject ~label:"xbar4/mux:8" ~original:nl
      (L.Schemes.mux_routing ~seed:1 ~width:8 nl)
  in
  List.filter_map
    (fun name ->
      A.Battery.find name
      |> Option.map (fun atk ->
             let _, secs =
               time_wall (fun () ->
                   ignore (A.Battery.run_attack capped_budget atk subject))
             in
             (name, secs)))
    [ "sat"; "appsat" ]

let all =
  [
    {
      name = "grid";
      description = "SheLL locking flows, (FIR|SPMV) x fabric styles";
      run = run_grid;
    };
    {
      name = "simulate";
      description = "catalog equivalence checks + packed Simw stepping";
      run = run_simulate;
    };
    {
      name = "battery";
      description = "full attack registry on locked xbar4 (cap-bound)";
      run = run_battery;
    };
    {
      name = "attacks";
      description = "sat + appsat DIP loops on mux-locked xbar4";
      run = run_attacks;
    };
  ]

let find name = List.find_opt (fun t -> t.name = name) all
let names () = List.map (fun t -> t.name) all
