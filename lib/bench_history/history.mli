(** The committed JSONL bench history: one {!Record.t} per line,
    appended chronologically. Records of different targets interleave
    freely; per-target queries filter. *)

val load : string -> (Record.t list, string) result
(** Parse every line of a JSONL history file, oldest first. A missing
    file is an empty history ([Ok []]); a malformed line is an error
    naming the line number. Blank lines are skipped. *)

val append : string -> Record.t -> unit
(** Append one record (a single line) to the file, creating it if
    needed. *)

val last : ?target:string -> Record.t list -> Record.t option
(** Most recent record, optionally restricted to one target. *)

val targets : Record.t list -> string list
(** Distinct target names, in first-appearance order. *)

val for_target : string -> Record.t list -> Record.t list
