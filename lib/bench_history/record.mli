(** One bench-history record: what one bench target measured at one
    commit.

    A record splits into a {e stable part} — version, target, the
    diffable counter snapshot ({!Shell_util.Obs.diffable_counters})
    and the span-structure aggregate ({!Shell_util.Obs.span_aggregate})
    — and context that legitimately varies between runs of the same
    code: commit id, job count, wall times. {!stable_json} renders
    only the former, so two runs of the same target on the same commit
    produce byte-identical stable parts at any [SHELL_JOBS]; the full
    {!json} line is what the JSONL history stores. *)

type t = {
  version : int;  (** record-format version, {!version} when written *)
  commit : string;
  target : string;
  jobs : int;
  times : (string * float) list;  (** per-benchmark wall seconds *)
  counters : (string * int) list;  (** name-sorted diffable counters *)
  spans : (string * int) list;  (** name-sorted span aggregate *)
}

val version : int
(** Current record-format version (1). *)

val json : t -> Shell_util.Jsonw.t

val stable_json : t -> Shell_util.Jsonw.t
(** Only the byte-diffable part: version, target, counters, spans. *)

val to_line : t -> string
(** Compact single-line JSON, the JSONL history representation. *)

val of_json : Shell_util.Jsonw.t -> (t, string) result
val of_line : string -> (t, string) result
