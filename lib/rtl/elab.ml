module Netlist = Shell_netlist.Netlist
module Cell = Shell_netlist.Cell
module Rewrite = Shell_netlist.Rewrite

exception Elab_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Elab_error s)) fmt

type env = (string, int array) Hashtbl.t

let lookup (env : env) path nm =
  match Hashtbl.find_opt env nm with
  | Some nets -> nets
  | None -> fail "%s: unknown signal %s" path nm

(* ------------------------------------------------------------------ *)
(* Expression elaboration: returns the nets of the result bits (LSB
   first). [origin] tags every emitted cell. *)
(* ------------------------------------------------------------------ *)

let add_with_carry nl origin a b cin =
  let n = Array.length a in
  let sum = Array.make n 0 in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let axb = Netlist.xor_ ~origin nl a.(i) b.(i) in
    sum.(i) <- Netlist.xor_ ~origin nl axb !carry;
    let gen = Netlist.and_ ~origin nl a.(i) b.(i) in
    let prop = Netlist.and_ ~origin nl axb !carry in
    carry := Netlist.or_ ~origin nl gen prop
  done;
  (sum, !carry)

let reduce_tree nl origin op bits =
  match Array.to_list bits with
  | [] -> fail "reduce of empty vector"
  | first :: rest -> List.fold_left (fun acc b -> op nl acc b) first rest
  [@@warning "-27"]

let rec elab_expr nl (env : env) ~path ~origin (e : Expr.t) : int array =
  let recur e = elab_expr nl env ~path ~origin e in
  let map2 op a b =
    let a = recur a and b = recur b in
    if Array.length a <> Array.length b then fail "%s: width mismatch" path;
    Array.init (Array.length a) (fun i -> op nl a.(i) b.(i))
  in
  match e with
  | Expr.Var nm -> lookup env path nm
  | Expr.Lit { width; value } ->
      Array.init width (fun i ->
          let bit = Int64.(logand (shift_right_logical value i) 1L) = 1L in
          Netlist.const ~origin nl bit)
  | Expr.Not a -> Array.map (Netlist.not_ ~origin nl) (recur a)
  | Expr.And (a, b) -> map2 (Netlist.and_ ~origin) a b
  | Expr.Or (a, b) -> map2 (Netlist.or_ ~origin) a b
  | Expr.Xor (a, b) -> map2 (Netlist.xor_ ~origin) a b
  | Expr.Add (a, b) ->
      let a = recur a and b = recur b in
      if Array.length a <> Array.length b then fail "%s: add width mismatch" path;
      let zero = Netlist.const ~origin nl false in
      fst (add_with_carry nl origin a b zero)
  | Expr.Sub (a, b) ->
      let a = recur a and b = recur b in
      if Array.length a <> Array.length b then fail "%s: sub width mismatch" path;
      let nb = Array.map (Netlist.not_ ~origin nl) b in
      let one = Netlist.const ~origin nl true in
      fst (add_with_carry nl origin a nb one)
  | Expr.Eq (a, b) ->
      let bits = map2 (Netlist.xnor_ ~origin) a b in
      [| reduce_tree nl origin (Netlist.and_ ~origin) bits |]
  | Expr.Lt (a, b) ->
      (* unsigned a < b: borrow out of a - b *)
      let a = recur a and b = recur b in
      if Array.length a <> Array.length b then fail "%s: lt width mismatch" path;
      let nb = Array.map (Netlist.not_ ~origin nl) b in
      let one = Netlist.const ~origin nl true in
      let _, carry = add_with_carry nl origin a nb one in
      [| Netlist.not_ ~origin nl carry |]
  | Expr.Mux (c, a, b) ->
      let c = recur c in
      if Array.length c <> 1 then fail "%s: mux condition not 1 bit" path;
      let a = recur a and b = recur b in
      if Array.length a <> Array.length b then fail "%s: mux width mismatch" path;
      (* Mux2 convention: sel=0 -> first data input. Condition true
         selects [a] (the then-branch). *)
      Array.init (Array.length a) (fun i ->
          Netlist.mux2 ~origin nl ~sel:c.(0) ~a:b.(i) ~b:a.(i))
  | Expr.Concat (hi, lo) ->
      let lo = recur lo and hi = recur hi in
      Array.append lo hi
  | Expr.Slice (a, hi, lo) ->
      let a = recur a in
      if lo < 0 || hi < lo || hi >= Array.length a then
        fail "%s: slice [%d:%d] out of range" path hi lo;
      Array.sub a lo (hi - lo + 1)
  | Expr.Reduce_and a ->
      [| reduce_tree nl origin (Netlist.and_ ~origin) (recur a) |]
  | Expr.Reduce_or a ->
      [| reduce_tree nl origin (Netlist.or_ ~origin) (recur a) |]
  | Expr.Reduce_xor a ->
      [| reduce_tree nl origin (Netlist.xor_ ~origin) (recur a) |]

(* ------------------------------------------------------------------ *)
(* Module instantiation                                                *)
(* ------------------------------------------------------------------ *)

let rec elab_inst design nl ~path (m : Rtl_module.t)
    (input_nets : (string * int array) list) : (string * int array) list =
  let env : env = Hashtbl.create 32 in
  let driven : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let mark_driven nm who =
    match Hashtbl.find_opt driven nm with
    | Some prev -> fail "%s: %s driven by both %s and %s" path nm prev who
    | None -> Hashtbl.add driven nm who
  in
  (* inputs come from the caller *)
  List.iter
    (fun (s : Rtl_module.signal) ->
      match List.assoc_opt s.name input_nets with
      | Some nets ->
          if Array.length nets <> s.width then
            fail "%s: input %s bound with width %d, declared %d" path s.name
              (Array.length nets) s.width;
          Hashtbl.replace env s.name nets;
          mark_driven s.name "parent"
      | None -> fail "%s: input %s not bound" path s.name)
    (Rtl_module.inputs m);
  (* pre-allocate nets for everything else *)
  let alloc (s : Rtl_module.signal) =
    Hashtbl.replace env s.name (Array.init s.width (fun _ -> Netlist.new_net nl))
  in
  List.iter alloc (Rtl_module.outputs m);
  List.iter alloc (Rtl_module.wires m);
  List.iter alloc (Rtl_module.regs m);
  (* registers: flops driving the pre-allocated q nets; the d nets are
     stitched when the clocked block is elaborated, via placeholders *)
  let widths nm =
    match Rtl_module.signal_width m nm with
    | Some w -> w
    | None -> fail "%s: unknown signal %s" path nm
  in
  (* instances *)
  List.iter
    (fun (inst : Rtl_module.instance) ->
      let sub =
        match Rtl_module.Design.find design inst.module_name with
        | Some sub -> sub
        | None -> fail "%s: unknown module %s" path inst.module_name
      in
      let sub_path = path ^ "/" ^ inst.inst_name in
      let actual formal =
        match List.assoc_opt formal inst.bindings with
        | Some a -> a
        | None -> fail "%s: port %s of %s not bound" path formal inst.inst_name
      in
      let sub_inputs =
        List.map
          (fun (s : Rtl_module.signal) ->
            (s.name, lookup env path (actual s.name)))
          (Rtl_module.inputs sub)
      in
      let sub_outputs = elab_inst design nl ~path:sub_path sub sub_inputs in
      List.iter
        (fun (formal, nets) ->
          let a = actual formal in
          let target = lookup env path a in
          if Array.length target <> Array.length nets then
            fail "%s: output %s width mismatch on %s" path formal inst.inst_name;
          mark_driven a ("instance " ^ inst.inst_name);
          Array.iteri
            (fun i net ->
              Netlist.add_cell nl
                (Cell.make ~origin:sub_path Cell.Buf [| net |] target.(i)))
            nets)
        sub_outputs)
    (Rtl_module.instances m);
  (* combinational blocks *)
  List.iter
    (fun (b : Rtl_module.block) ->
      let origin = path ^ ":" ^ b.block_name in
      List.iter
        (fun (nm, e) ->
          let target = lookup env path nm in
          let result = elab_expr nl env ~path ~origin e in
          if Array.length result <> Array.length target then
            fail "%s: assign to %s: width %d vs %d" path nm
              (Array.length result) (Array.length target);
          ignore (widths nm);
          mark_driven nm ("block " ^ b.block_name);
          Array.iteri
            (fun i net ->
              Netlist.add_cell nl (Cell.make ~origin Cell.Buf [| net |] target.(i)))
            result)
        b.assigns)
    (Rtl_module.combs m);
  (* clocked blocks *)
  List.iter
    (fun (b : Rtl_module.block) ->
      let origin = path ^ ":" ^ b.block_name in
      List.iter
        (fun (nm, e) ->
          let q = lookup env path nm in
          let d = elab_expr nl env ~path ~origin e in
          if Array.length d <> Array.length q then
            fail "%s: reg %s: width %d vs %d" path nm (Array.length d)
              (Array.length q);
          mark_driven nm ("block " ^ b.block_name);
          Array.iteri
            (fun i dnet ->
              Netlist.add_cell nl (Cell.make ~origin Cell.Dff [| dnet |] q.(i)))
            d)
        b.assigns)
    (Rtl_module.seqs m);
  (* completeness: every output / wire / reg must be driven *)
  let check_driven (s : Rtl_module.signal) =
    if not (Hashtbl.mem driven s.name) then
      fail "%s: signal %s is never driven" path s.name
  in
  List.iter check_driven (Rtl_module.outputs m);
  List.iter check_driven (Rtl_module.wires m);
  List.iter check_driven (Rtl_module.regs m);
  List.map
    (fun (s : Rtl_module.signal) -> (s.name, lookup env path s.name))
    (Rtl_module.outputs m)

let bit_port_name (s : Rtl_module.signal) i =
  if s.width = 1 then s.name else Printf.sprintf "%s[%d]" s.name i

let elaborate ?(clean = true) design =
  let top_name = Rtl_module.Design.top design in
  let top =
    match Rtl_module.Design.find design top_name with
    | Some m -> m
    | None -> fail "top module %s not found" top_name
  in
  let nl = Netlist.create top_name in
  let input_nets =
    List.map
      (fun (s : Rtl_module.signal) ->
        ( s.name,
          Array.init s.width (fun i ->
              Netlist.add_input nl (bit_port_name s i)) ))
      (Rtl_module.inputs top)
  in
  let outputs = elab_inst design nl ~path:top_name top input_nets in
  List.iter
    (fun (s : Rtl_module.signal) ->
      match List.assoc_opt s.name outputs with
      | Some nets ->
          Array.iteri
            (fun i net -> Netlist.add_output nl (bit_port_name s i) net)
            nets
      | None -> fail "top output %s missing" s.name)
    (Rtl_module.outputs top);
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error d -> fail "elaborated netlist invalid: %s" (Shell_util.Diag.to_string d));
  if clean then Rewrite.clean nl else nl

let module_footprint nl =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun c ->
      let o = c.Cell.origin in
      Hashtbl.replace tbl o (1 + try Hashtbl.find tbl o with Not_found -> 0))
    (Netlist.cells nl);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
