(** Truth tables for LUTs of up to 6 inputs.

    A table over [k] inputs stores 2^k output bits; bit [i] is the
    output when the inputs, read as a little-endian binary number,
    equal [i]. Backed by [int64], so [k <= 6]. *)

type t

val max_inputs : int
(** 6. *)

val create : arity:int -> bits:int64 -> t
(** Bits above 2^arity are masked off. Raises [Invalid_argument] if
    [arity] is negative or exceeds {!max_inputs}. *)

val arity : t -> int

val bits : t -> int64

val eval : t -> bool array -> bool
(** [eval t ins] looks up the row selected by [ins] (length = arity). *)

val eval_row : t -> int -> bool
(** [eval_row t row] looks up row [row] directly (0 <= row < 2^arity),
    avoiding the input-array round trip in simulation hot loops. *)

val of_fun : arity:int -> (bool array -> bool) -> t
(** Tabulate a Boolean function. *)

val const : bool -> t
(** 0-input constant table. *)

val var : int -> arity:int -> t
(** Table of the projection onto input [i]. *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t

val equal : t -> t -> bool
val is_const : t -> bool option
(** [Some b] when the table outputs [b] on every row. *)

val cofactor : t -> int -> bool -> t
(** [cofactor t i v]: fix input [i] to [v]; arity decreases by one. *)

val depends_on : t -> int -> bool
(** Whether the function actually depends on input [i]. *)

val support_size : t -> int
(** Number of inputs the function truly depends on. *)

val pp : Format.formatter -> t -> unit
