(* A process-wide pool of worker domains sharing one batch at a time.
   Tasks are claimed from a single cursor under the pool mutex (work
   sharing); each claimed index runs outside the lock. The submitting
   domain participates in its own batch, so [jobs = n] means n domains
   of compute including the caller. *)

type batch = {
  run_task : int -> unit;  (* never raises: wrapper captures exceptions *)
  total : int;
  mutable next : int;  (* next unclaimed index *)
  mutable unfinished : int;  (* claimed-or-not tasks still incomplete *)
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* a batch arrived / shutdown *)
  idle : Condition.t;  (* a batch finished *)
  mutable current : batch option;
  mutable workers : unit Domain.t list;
  mutable shutting_down : bool;
}

let pool =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    current = None;
    workers = [];
    shutting_down = false;
  }

let inside_key = Domain.DLS.new_key (fun () -> false)
let inside_task () = Domain.DLS.get inside_key

(* Telemetry. Tasks and batches are counted at the [mapi] choke point
   — before the sequential/parallel path split — and callers with
   their own sequential fallback (e.g. Centrality.betweenness below
   nsrc=4 or at jobs=1) report the batches they run inline through
   [count_batch], so the totals are a pure function of the work
   submitted and register as stable. The queue-wait / latency
   histograms and the busy-time counter only see the parallel path
   and carry wall-clock values, so they stay unstable. *)
let m_tasks =
  Obs.counter ~stable:true ~help:"tasks submitted to the domain pool"
    "pool_tasks"

let m_batches =
  Obs.counter ~stable:true ~help:"batches submitted to the domain pool"
    "pool_batches"

let h_queue_wait_us =
  Obs.histogram ~help:"microseconds between batch submission and task start"
    "pool_queue_wait_us"

let h_task_us =
  Obs.histogram ~help:"task execution microseconds" "pool_task_us"

let m_busy_us =
  Obs.counter
    ~help:"summed task execution microseconds across all pool domains"
    "pool_busy_us"

let max_jobs = 64

let parse_env () =
  match Sys.getenv_opt "SHELL_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | _ -> None)
  | None -> None

let default =
  ref
    (let v =
       match parse_env () with
       | Some v -> v
       | None -> Domain.recommended_domain_count ()
     in
     max 1 (min max_jobs v))

let default_jobs () = !default
let set_default_jobs n = default := max 1 (min max_jobs n)

(* Claim-and-run loop shared by workers and the submitter. Expects the
   mutex held; returns with it held. *)
let drain b =
  while b.next < b.total do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock pool.mutex;
    b.run_task i;
    Mutex.lock pool.mutex;
    b.unfinished <- b.unfinished - 1;
    if b.unfinished = 0 then begin
      pool.current <- None;
      Condition.broadcast pool.idle
    end
  done

let worker () =
  Domain.DLS.set inside_key true;
  Mutex.lock pool.mutex;
  let rec loop () =
    if pool.shutting_down then Mutex.unlock pool.mutex
    else begin
      (match pool.current with
      | Some b when b.next < b.total -> drain b
      | _ -> Condition.wait pool.work pool.mutex);
      loop ()
    end
  in
  loop ()

let shutdown () =
  Mutex.lock pool.mutex;
  pool.shutting_down <- true;
  Condition.broadcast pool.work;
  let ws = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join ws

(* Expects the mutex held. Worker domains live until process exit. *)
let ensure_workers n =
  if List.length pool.workers = 0 && n > 0 then at_exit shutdown;
  while List.length pool.workers < n do
    pool.workers <- Domain.spawn worker :: pool.workers
  done

let run_batch ~jobs ~total run_task =
  if total <= 0 then invalid_arg "Pool.run_batch: empty batch";
  let run_task =
    if not (Obs.enabled ()) then run_task
    else begin
      let submitted = Clock.now () in
      fun i ->
        let t0 = Clock.now () in
        Obs.observe_us h_queue_wait_us (t0 -. submitted);
        run_task i;
        let dt = Clock.now () -. t0 in
        Obs.observe_us h_task_us dt;
        Obs.add m_busy_us (int_of_float (1e6 *. dt))
    end
  in
  Mutex.lock pool.mutex;
  ensure_workers (jobs - 1);
  while pool.current <> None do
    Condition.wait pool.idle pool.mutex
  done;
  let b = { run_task; total; next = 0; unfinished = total } in
  pool.current <- Some b;
  Condition.broadcast pool.work;
  Domain.DLS.set inside_key true;
  drain b;
  Domain.DLS.set inside_key false;
  while b.unfinished > 0 do
    Condition.wait pool.idle pool.mutex
  done;
  Mutex.unlock pool.mutex

let resolve jobs =
  match jobs with Some j -> max 1 (min max_jobs j) | None -> default_jobs ()

(* Sequential reference semantics: run in index order, raise at the
   first failing task. *)
let seq_mapi f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0 arr.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- f i arr.(i)
    done;
    out
  end

(* Counted on every path (sequential, parallel, nested) so the totals
   match at any job count. [iter_chunks] counts its logical element
   count, not its piece count — the piece count is a function of the
   job count and would break snapshot byte-identity. *)
let count_batch n =
  if n > 0 then begin
    Obs.incr m_batches;
    Obs.add m_tasks n
  end

let mapi_uncounted ?jobs f arr =
  let n = Array.length arr in
  let jobs = resolve jobs in
  (* Lend the caller's open span to every task — wrapped before the
     path split so the span tree has the same shape on the sequential
     bypass as across worker domains. *)
  let f =
    let ctx = Obs.context () in
    if Obs.context_active ctx then
      fun i x -> Obs.with_context ctx (fun () -> f i x)
    else f
  in
  if n <= 1 || jobs <= 1 || inside_task () then seq_mapi f arr
  else begin
    let out = Array.make n None in
    let exns = Array.make n None in
    let run_task i =
      match f i arr.(i) with
      | v -> out.(i) <- Some v
      | exception e -> exns.(i) <- Some e
    in
    run_batch ~jobs:(min jobs n) ~total:n run_task;
    Array.iter (function Some e -> raise e | None -> ()) exns;
    Array.map (function Some v -> v | None -> assert false) out
  end

let mapi ?jobs f arr =
  count_batch (Array.length arr);
  mapi_uncounted ?jobs f arr

let map ?jobs f arr = mapi ?jobs (fun _ x -> f x) arr

let map_list ?jobs f l = Array.to_list (map ?jobs f (Array.of_list l))

let map_reduce ?jobs ~map:f ~reduce ~init arr =
  Array.fold_left reduce init (map ?jobs f arr)

let iter_chunks ?jobs ?chunk f n =
  if n > 0 then begin
    count_batch n;
    let jobs = resolve jobs in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ | None -> max 1 (n / (4 * jobs))
    in
    let pieces = (n + chunk - 1) / chunk in
    let bounds =
      Array.init pieces (fun k -> (k * chunk, min n ((k + 1) * chunk)))
    in
    ignore (mapi_uncounted ~jobs (fun _ (lo, hi) -> f lo hi) bounds)
  end

let task_rng ~seed i =
  (* decorrelate nearby (seed, i) pairs before seeding splitmix *)
  let r = Rng.create (seed lxor (0x9E3779B9 * (i + 1))) in
  Rng.split r
