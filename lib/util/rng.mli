(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic step of the framework (placement moves, random
    vectors, benchmark generation) draws from an explicit [t] so that
    whole-flow runs are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent clone with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val child : t -> int -> t
(** [child t i] derives an independent generator for index [i] from
    [t]'s {e current} state without advancing [t]: equal states and
    equal indices yield equal streams. This is how batch workers (the
    fuzzer's per-oracle streams) get reproducible randomness that does
    not depend on how many sibling streams were taken before them. *)

val split_n : t -> int -> t array
(** [split_n t n] advances [t] [n] times and returns [n] independent
    generators ([Array.init n (fun _ -> split t)]). *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val word : t -> int -> int
(** [word t n] packs [n] {!bool} draws into one machine word, draw [i]
    at bit [i] (0 <= n <= [Sys.int_size]). Byte-compatible with the
    scalar stream: the same state advance as [n] calls to {!bool}. *)

val vectors_packed : ?lanes:int -> t -> vectors:int -> bits:int -> int array array
(** [vectors_packed t ~vectors ~bits] draws [vectors] random
    [bits]-wide test vectors in vector-major order (the scalar draw
    order) and packs them into word chunks of up to [lanes] (default
    [Sys.int_size]) vectors each: in chunk [c], bit [l] of word [i] is
    bit [i] of vector [c * lanes + l]. Consumes exactly
    [vectors * bits] {!bool} draws. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly chosen element. Requires a non-empty array. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t n arr] draws [n] distinct elements (n <= length). *)
