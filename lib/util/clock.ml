external monotonic : unit -> float = "shell_clock_monotonic_time"

let now () = monotonic ()
let wall () = Unix.gettimeofday ()
let elapsed t0 = now () -. t0

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
