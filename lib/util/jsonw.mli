(** A small escaping-correct JSON writer (and reader, for tests).

    Three hand-rolled JSON emitters grew in the code base — the trace
    serializer, the bench harness and the metrics snapshot — each with
    its own escaping bugs waiting to happen. They now all render
    through this one value type. Numbers can be carried preformatted
    ([Num]) so call sites keep exact control over float precision
    (which matters for byte-identical snapshots). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of string  (** preformatted number literal, emitted verbatim *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val float : ?dec:int -> float -> t
(** [Num] with [dec] decimal places (default 6). Non-finite values
    render as [Null] (JSON has no NaN/Infinity). *)

val escape : string -> string
(** The escaped contents of a JSON string, without the surrounding
    quotes: quote, backslash and control characters become escape
    sequences;
    bytes >= 0x80 pass through untouched (the string is assumed
    UTF-8). *)

val to_buffer : ?indent:int -> Buffer.t -> t -> unit

val to_string : ?indent:int -> t -> string
(** [indent = 0] (default) is compact one-line JSON; a positive
    [indent] pretty-prints objects and arrays at that step. *)

val of_string : string -> (t, string) result
(** Minimal strict parser, the round-trip partner of {!to_string}:
    numbers are kept as [Num] literals verbatim, [\uXXXX] escapes are
    decoded to UTF-8 (surrogate pairs combine into one astral code
    point; lone surrogates and bad hex digits are parse errors). *)

(** {1 Framing}

    Length-prefixed JSON frames for the serve-daemon socket: a 4-byte
    big-endian byte length followed by that many bytes of compact
    JSON. The reader side is a push-style incremental framer so short
    reads across frame boundaries (the normal case on a socket) just
    work. *)

val default_max_frame : int
(** 16 MiB — the frame-size ceiling both sides enforce by default. *)

val frame : ?max_frame:int -> t -> string
(** [frame v] is the wire form of [v]: big-endian length + compact
    JSON. Raises [Invalid_argument] if the encoding exceeds
    [max_frame]. *)

type framer
(** Incremental frame reader; one per connection. *)

val framer : ?max_frame:int -> unit -> framer

val feed : framer -> Bytes.t -> int -> int -> unit
(** [feed fr b off len] appends bytes read from the socket. *)

val feed_string : framer -> string -> unit

val next : framer -> [ `Frame of string | `Await | `Error of string ]
(** Pop the next complete frame body. [`Await] means more bytes are
    needed; [`Error] (a frame longer than [max_frame]) is sticky —
    the connection should be dropped, since resynchronising inside a
    byte stream is not possible. *)
