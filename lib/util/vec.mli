(** Growable arrays (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate v n] keeps the first [n] elements. [n <= length v]. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t
