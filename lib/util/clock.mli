(** Clock sources for budgets, tracing, and timestamps.

    A single shared clock so attack budgets (PR 1) and the pass
    pipeline's per-pass timing agree on what "elapsed" means.
    [Sys.time] is process-wide CPU time, which under the domain pool
    advances once per core — wall time is what budgets and traces
    want. Durations additionally need a source that an NTP step or a
    manual date change cannot move backwards, so [now]/[elapsed]/
    [time] read CLOCK_MONOTONIC (via a C stub; OCaml 5.1's unix
    library does not expose clock_gettime) and [wall] is the only
    epoch-anchored reading. *)

val now : unit -> float
(** Seconds on the monotonic clock, sub-millisecond resolution. The
    origin is arbitrary (typically boot time): only differences are
    meaningful — never persist or compare against epoch seconds. *)

val wall : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]). For absolute
    timestamps only (log lines, record dates); subject to NTP steps,
    so never use for durations. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the monotonic
    seconds it took. *)
