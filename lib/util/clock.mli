(** Monotonic-enough wall clock for budgets and tracing.

    A single shared clock source so attack budgets (PR 1) and the pass
    pipeline's per-pass timing agree on what "elapsed" means.
    [Sys.time] is process-wide CPU time, which under the domain pool
    advances once per core — wall time is what budgets and traces
    want. *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the wall seconds it
    took. *)
