(* Process-wide metrics registry + span recorder.

   Sharding: each domain lazily claims a shard index; a metric's cells
   are per-shard atomics, so recording never contends and merging is a
   sum — order-independent, which is what makes stable snapshots
   byte-identical across job counts. Shard indices wrap at
   [max_shards]; a wrap only means two domains share (still correct)
   atomic cells. *)

let on_flag = Atomic.make false
let enabled () = Atomic.get on_flag
let set_enabled b = Atomic.set on_flag b

let max_shards = 128
let next_shard = Atomic.make 0

let shard_key =
  Domain.DLS.new_key (fun () ->
      Atomic.fetch_and_add next_shard 1 land (max_shards - 1))

let shard () = Domain.DLS.get shard_key

(* ---------------- registry ---------------- *)

let nbuckets = 32

type kind = K_counter | K_gauge | K_histogram

type metric = {
  name : string;
  help : string;
  stable : bool;
  kind : kind;
  cells : int Atomic.t array;
      (* counters/gauges: one cell per shard (gauges use cell 0 only);
         histograms: per shard, [nbuckets] bucket cells + 1 sum cell *)
}

let registry : metric list ref = ref [] (* newest first *)
let reg_mutex = Mutex.create ()

let register name help stable kind =
  let ncells =
    match kind with
    | K_counter | K_gauge -> max_shards
    | K_histogram -> max_shards * (nbuckets + 1)
  in
  let m =
    { name; help; stable; kind; cells = Array.init ncells (fun _ -> Atomic.make 0) }
  in
  Mutex.lock reg_mutex;
  if List.exists (fun m' -> m'.name = name) !registry then begin
    Mutex.unlock reg_mutex;
    invalid_arg ("Obs: duplicate metric " ^ name)
  end;
  registry := m :: !registry;
  Mutex.unlock reg_mutex;
  m

type counter = metric
type gauge = metric
type histogram = metric

let counter ?(stable = false) ~help name = register name help stable K_counter

let add m n =
  if Atomic.get on_flag then
    ignore (Atomic.fetch_and_add m.cells.(shard ()) n)

let incr m = add m 1

let gauge ?(stable = false) ~help name = register name help stable K_gauge
let set m v = if Atomic.get on_flag then Atomic.set m.cells.(0) v

let histogram ?(stable = false) ~help name =
  register name help stable K_histogram

(* bucket 0: v <= 1; bucket i: 2^(i-1) < v <= 2^i; top bucket absorbs
   the overflow *)
let bucket_of v =
  if v <= 1 then 0
  else
    let b =
      (* index of the highest set bit of (v - 1), plus one *)
      let x = v - 1 in
      let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + 1) in
      go x 0
    in
    min b (nbuckets - 1)

let observe m v =
  if Atomic.get on_flag then begin
    let base = shard () * (nbuckets + 1) in
    ignore (Atomic.fetch_and_add m.cells.(base + bucket_of v) 1);
    ignore (Atomic.fetch_and_add m.cells.(base + nbuckets) v)
  end

let observe_us m seconds =
  if Atomic.get on_flag then observe m (int_of_float (1e6 *. seconds))

(* ---------------- snapshots ---------------- *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { buckets : int array; count : int; sum : int }

type sample = { name : string; help : string; stable : bool; value : value }

let sample_of (m : metric) =
  let value =
    match m.kind with
    | K_counter ->
        let total = ref 0 in
        Array.iter (fun c -> total := !total + Atomic.get c) m.cells;
        Counter !total
    | K_gauge -> Gauge (Atomic.get m.cells.(0))
    | K_histogram ->
        let buckets = Array.make nbuckets 0 in
        let sum = ref 0 in
        for s = 0 to max_shards - 1 do
          let base = s * (nbuckets + 1) in
          for b = 0 to nbuckets - 1 do
            buckets.(b) <- buckets.(b) + Atomic.get m.cells.(base + b)
          done;
          sum := !sum + Atomic.get m.cells.(base + nbuckets)
        done;
        let count = Array.fold_left ( + ) 0 buckets in
        Histogram { buckets; count; sum = !sum }
  in
  { name = m.name; help = m.help; stable = m.stable; value }

let snapshot () =
  Mutex.lock reg_mutex;
  let ms = !registry in
  Mutex.unlock reg_mutex;
  List.rev_map sample_of ms

let keep stable_only s = (not stable_only) || s.stable

let json ?(stable_only = false) samples =
  let metric s =
    let base =
      [
        ("name", Jsonw.Str s.name);
        ("help", Jsonw.Str s.help);
        ("stable", Jsonw.Bool s.stable);
      ]
    in
    match s.value with
    | Counter v -> Jsonw.Obj (base @ [ ("type", Str "counter"); ("value", Int v) ])
    | Gauge v -> Jsonw.Obj (base @ [ ("type", Str "gauge"); ("value", Int v) ])
    | Histogram { buckets; count; sum } ->
        Jsonw.Obj
          (base
          @ [
              ("type", Str "histogram");
              ("count", Int count);
              ("sum", Int sum);
              ( "buckets",
                Arr (Array.to_list (Array.map (fun b -> Jsonw.Int b) buckets))
              );
            ])
  in
  Jsonw.Obj
    [
      ( "metrics",
        Arr (List.filter_map
               (fun s -> if keep stable_only s then Some (metric s) else None)
               samples) );
    ]

let to_json ?stable_only samples =
  Jsonw.to_string ~indent:2 (json ?stable_only samples)

(* Prometheus metric names admit only [a-zA-Z0-9_:]; dotted names
   (span-style "pnr.attempt") and anything else hostile map to '_'.
   The "shell_" prefix keeps a leading digit legal. *)
let prometheus_name s =
  "shell_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
      s

(* HELP lines escape backslash and newline per the text exposition
   format; anything else passes through verbatim. *)
let prometheus_help s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus ?(stable_only = false) samples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      if keep stable_only s then begin
        let n = prometheus_name s.name in
        Printf.bprintf buf "# HELP %s %s\n" n (prometheus_help s.help);
        match s.value with
        | Counter v ->
            Printf.bprintf buf "# TYPE %s counter\n%s %d\n" n n v
        | Gauge v -> Printf.bprintf buf "# TYPE %s gauge\n%s %d\n" n n v
        | Histogram { buckets; count; sum } ->
            Printf.bprintf buf "# TYPE %s histogram\n" n;
            let cum = ref 0 in
            Array.iteri
              (fun i b ->
                cum := !cum + b;
                if i < nbuckets - 1 then
                  Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" n (1 lsl i)
                    !cum)
              buckets;
            Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" n count;
            Printf.bprintf buf "%s_sum %d\n%s_count %d\n" n sum n count
      end)
    samples;
  Buffer.contents buf

(* The diffable record form: stable metrics flattened to sorted
   (name, value) pairs. Histograms contribute ".count"/".sum" keys so
   the whole thing is integer-exact. [extra] opts individual metrics in
   by name even when they registered unstable — bench targets use this
   for counters (solver work, pass-cache traffic) that are
   deterministic under the target's capped budgets even though they
   are racy in general workloads. *)
let diffable_counters ?(extra = []) samples =
  List.concat_map
    (fun s ->
      if s.stable || List.mem s.name extra then
        match s.value with
        | Counter v | Gauge v -> [ (s.name, v) ]
        | Histogram { count; sum; _ } ->
            [ (s.name ^ ".count", count); (s.name ^ ".sum", sum) ]
      else [])
    samples
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stable_from_env () =
  match Sys.getenv_opt "SHELL_METRICS_STABLE" with
  | Some ("1" | "true") -> true
  | _ -> false

let write_file path =
  let stable_only = stable_from_env () in
  let samples = snapshot () in
  let text =
    if Filename.check_suffix path ".prom" then
      to_prometheus ~stable_only samples
    else to_json ~stable_only samples ^ "\n"
  in
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* ---------------- spans ---------------- *)

type span = {
  name : string;
  seconds : float;
  counters : (string * int) list;
  children : span list;
}

(* open spans accumulate children/counters newest-first; [freeze]
   restores recording order for the public view *)
type open_span = {
  sname : string;
  mutable acc : (string * int) list;
  mutable kids : span list;
}

(* [parent] is a borrowed open span of {e another} stack: a pool worker
   running a task on behalf of a caller whose span is still open. Spans
   and counters completing with an empty local stack attach there (under
   [foreign_mutex], since several workers may share one parent) instead
   of becoming roots — so a fan-out's span tree has the same shape at
   any job count. *)
type stack = { mutable stack : open_span list; mutable parent : open_span option }

let stack_key = Domain.DLS.new_key (fun () -> { stack = []; parent = None })

let roots : span list ref = ref [] (* newest first *)
let roots_mutex = Mutex.create ()
let foreign_mutex = Mutex.create ()

let freeze o seconds =
  {
    name = o.sname;
    seconds;
    counters = List.rev o.acc;
    children = List.rev o.kids;
  }

let attach_foreign_kid p sp =
  Mutex.lock foreign_mutex;
  p.kids <- sp :: p.kids;
  Mutex.unlock foreign_mutex

let with_span name f =
  if not (Atomic.get on_flag) then f ()
  else begin
    let st = Domain.DLS.get stack_key in
    let o = { sname = name; acc = []; kids = [] } in
    st.stack <- o :: st.stack;
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let sp = freeze o (Clock.now () -. t0) in
        (match st.stack with
        | top :: rest when top == o -> st.stack <- rest
        | _ -> () (* unbalanced: leave the stack alone *));
        match st.stack with
        | parent :: _ -> parent.kids <- sp :: parent.kids
        | [] -> (
            match st.parent with
            | Some p -> attach_foreign_kid p sp
            | None ->
                Mutex.lock roots_mutex;
                roots := sp :: !roots;
                Mutex.unlock roots_mutex))
      f
  end

let span_add name v =
  if Atomic.get on_flag then
    let st = Domain.DLS.get stack_key in
    match st.stack with
    | o :: _ -> o.acc <- (name, v) :: o.acc
    | [] -> (
        match st.parent with
        | Some p ->
            Mutex.lock foreign_mutex;
            p.acc <- (name, v) :: p.acc;
            Mutex.unlock foreign_mutex
        | None -> ())

(* ---------------- cross-domain span context ---------------- *)

type context = open_span option

let context () =
  if not (Atomic.get on_flag) then None
  else
    let st = Domain.DLS.get stack_key in
    match st.stack with o :: _ -> Some o | [] -> st.parent

let context_active = Option.is_some

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some _ ->
      let st = Domain.DLS.get stack_key in
      let saved_stack = st.stack and saved_parent = st.parent in
      st.stack <- [];
      st.parent <- ctx;
      Fun.protect
        ~finally:(fun () ->
          st.stack <- saved_stack;
          st.parent <- saved_parent)
        f

let spans () =
  Mutex.lock roots_mutex;
  let r = !roots in
  Mutex.unlock roots_mutex;
  List.rev r

let pp_spans ppf spans =
  let rec go depth sp =
    Format.fprintf ppf "%s%-*s %8.1f ms"
      (String.make (2 * depth) ' ')
      (max 1 (24 - (2 * depth)))
      sp.name (1000.0 *. sp.seconds);
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) sp.counters;
    Format.pp_print_newline ppf ();
    List.iter (go (depth + 1)) sp.children
  in
  List.iter (go 0) spans

let rec span_json sp =
  Jsonw.Obj
    [
      ("name", Jsonw.Str sp.name);
      ("seconds", Jsonw.float sp.seconds);
      ("counters", Jsonw.Obj (List.map (fun (k, v) -> (k, Jsonw.Int v)) sp.counters));
      ("children", Jsonw.Arr (List.map span_json sp.children));
    ]

let spans_json spans = Jsonw.Arr (List.map span_json spans)

(* Structure only — never elapsed times: "path" keys count invocations
   of each slash-joined span path, "path#counter" keys sum the
   [span_add] values recorded there. Sorted and merged, so the result
   is independent of completion order (and hence of the job count,
   given deterministic work). *)
let span_aggregate spans =
  let tbl = Hashtbl.create 64 in
  let bump k v =
    Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let rec go prefix sp =
    let path = if prefix = "" then sp.name else prefix ^ "/" ^ sp.name in
    bump path 1;
    List.iter (fun (k, v) -> bump (path ^ "#" ^ k) v) sp.counters;
    List.iter (go path) sp.children
  in
  List.iter (go "") spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () =
  Mutex.lock reg_mutex;
  let ms = !registry in
  Mutex.unlock reg_mutex;
  List.iter (fun m -> Array.iter (fun c -> Atomic.set c 0) m.cells) ms;
  Mutex.lock roots_mutex;
  roots := [];
  Mutex.unlock roots_mutex

(* ---------------- env gates ---------------- *)

let () =
  (match Sys.getenv_opt "SHELL_OBS" with
  | Some ("1" | "true") -> set_enabled true
  | _ -> ());
  match Sys.getenv_opt "SHELL_METRICS" with
  | Some path when path <> "" ->
      set_enabled true;
      at_exit (fun () -> try write_file path with Sys_error _ -> ())
  | _ -> ()
