(** Per-pass execution traces.

    Every pipeline pass records a [span]: its wall time (via {!Clock}),
    whether it was served from the pass-level cache, and a set of named
    integer counters (cells, nets, LUTs, mux-chain stages, config bits,
    routed nets, ...). Traces surface through the [--trace] CLI flag,
    the [SHELL_TRACE] environment variable, and the bench JSON
    emitter. *)

type span = {
  pass : string;
  seconds : float;
  cache_hit : bool;  (** output reused from the pass-level cache *)
  counters : (string * int) list;
}

val enabled : unit -> bool
(** True when [SHELL_TRACE] is set to anything but ["0"], [""] or
    ["false"]: pipeline executions print their spans to stderr. *)

val set_enabled : bool -> unit
(** Programmatic override of the environment gate (the CLI's
    [--trace] flag). *)

val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> span list -> unit
(** Aligned table, one line per span, with a total row. *)

val json : span list -> Jsonw.t
(** JSON array; schema documented in DESIGN.md §3e:
    [{"pass": .., "seconds": .., "cache_hit": .., "counters": {..}}]. *)

val to_json : span list -> string
(** [json] rendered through {!Jsonw.to_string}. *)
