type t = { arity : int; bits : int64 }

let max_inputs = 6

(* Mask keeping only the 2^arity meaningful rows. arity = 6 uses the
   whole word, where a shift by 64 would be undefined. *)
let mask arity =
  if arity >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl arity)) 1L

let create ~arity ~bits =
  if arity < 0 || arity > max_inputs then
    invalid_arg "Truthtab.create: arity out of range";
  { arity; bits = Int64.logand bits (mask arity) }

let arity t = t.arity
let bits t = t.bits

let row_of_inputs ins =
  let n = Array.length ins in
  let rec go i acc = if i >= n then acc else go (i + 1) (if ins.(i) then acc lor (1 lsl i) else acc) in
  go 0 0

(* Rows 0..62 fit in the native-int image of [bits]; only row 63 (the
   top row of an arity-6 table) needs the boxed [Int64] path. *)
let eval_row t row =
  assert (row >= 0 && row < 1 lsl t.arity);
  if row <= 62 then (Int64.to_int t.bits lsr row) land 1 = 1
  else Int64.(logand (shift_right_logical t.bits row) 1L) = 1L

let eval t ins =
  assert (Array.length ins = t.arity);
  eval_row t (row_of_inputs ins)

let of_fun ~arity f =
  if arity < 0 || arity > max_inputs then
    invalid_arg "Truthtab.of_fun: arity out of range";
  let bits = ref 0L in
  for row = 0 to (1 lsl arity) - 1 do
    let ins = Array.init arity (fun i -> row land (1 lsl i) <> 0) in
    if f ins then bits := Int64.logor !bits (Int64.shift_left 1L row)
  done;
  { arity; bits = !bits }

let const b = { arity = 0; bits = (if b then 1L else 0L) }

let var i ~arity =
  if i < 0 || i >= arity then invalid_arg "Truthtab.var";
  of_fun ~arity (fun ins -> ins.(i))

let lnot t = { t with bits = Int64.logand (Int64.lognot t.bits) (mask t.arity) }

let binop op a b =
  if a.arity <> b.arity then invalid_arg "Truthtab: arity mismatch";
  { arity = a.arity; bits = Int64.logand (op a.bits b.bits) (mask a.arity) }

let land_ = binop Int64.logand
let lor_ = binop Int64.logor
let lxor_ = binop Int64.logxor

let equal a b = a.arity = b.arity && Int64.equal a.bits b.bits

let is_const t =
  if Int64.equal t.bits 0L then Some false
  else if Int64.equal t.bits (mask t.arity) then Some true
  else None

let cofactor t i v =
  if i < 0 || i >= t.arity then invalid_arg "Truthtab.cofactor";
  of_fun ~arity:(t.arity - 1) (fun ins ->
      let full = Array.make t.arity v in
      Array.blit ins 0 full 0 i;
      Array.blit ins i full (i + 1) (t.arity - 1 - i);
      eval t full)

let depends_on t i =
  not (equal (cofactor t i false) (cofactor t i true))

let support_size t =
  let n = ref 0 in
  for i = 0 to t.arity - 1 do
    if depends_on t i then incr n
  done;
  !n

let pp ppf t = Format.fprintf ppf "lut%d:%Lx" t.arity t.bits
