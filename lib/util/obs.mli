(** Deterministic metrics and hierarchical span telemetry.

    The paper's security story rests on attack {e effort} (DIS
    iterations, solver conflicts, timeout behaviour) and the overhead
    story on per-stage resource counts. [Obs] is the process-wide
    registry those layers report into: counters, gauges and
    fixed-log-bucket histograms, plus parent/child spans that extend
    the flat per-pass {!Trace}.

    {b Determinism contract.} Metric cells are sharded per domain
    (uncontended atomics) and merged at snapshot time in {e
    registration} order — module-initialization order, which is fixed
    for a given binary. Metrics registered with [~stable:true] promise
    a value that is a pure function of the work submitted — never of
    wall-clock time or scheduling — so a [stable_only] snapshot is
    byte-identical across [SHELL_JOBS] settings (the property CI
    byte-diffs). Timing histograms, cache hit/miss counts and anything
    else racy registers with [~stable:false] and is excluded from
    stable snapshots.

    {b Cost.} Collection is disabled by default; every recording
    entry point is a single atomic-flag load and branch when disabled
    (no allocation, no time syscalls). Enable with {!set_enabled},
    [SHELL_OBS=1], or [SHELL_METRICS=FILE] (which additionally writes
    a snapshot at process exit: Prometheus text when [FILE] ends in
    [.prom], JSON otherwise; [SHELL_METRICS_STABLE=1] restricts it to
    stable metrics). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Metrics} *)

type counter
type gauge
type histogram

val counter : ?stable:bool -> help:string -> string -> counter
(** Register a monotonic counter. [stable] (default [false]) declares
    the merged value deterministic across job counts; name must be
    unique. Registration is expected at module-initialization time so
    the registry order is fixed. *)

val incr : counter -> unit
val add : counter -> int -> unit

val gauge : ?stable:bool -> help:string -> string -> gauge
val set : gauge -> int -> unit

val histogram : ?stable:bool -> help:string -> string -> histogram
(** Fixed log-bucket histogram over non-negative integers. Bucket [0]
    holds values [<= 1]; bucket [i >= 1] holds values in
    [(2^(i-1), 2^i]]; the last bucket also absorbs the overflow. *)

val observe : histogram -> int -> unit

val observe_us : histogram -> float -> unit
(** Record a duration in seconds as whole microseconds. *)

val nbuckets : int
(** Buckets per histogram (the last is the overflow bucket). *)

val bucket_of : int -> int
(** The bucket index a value lands in (exposed for tests). *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { buckets : int array; count : int; sum : int }
      (** [buckets] are per-bucket (non-cumulative) counts. *)

type sample = { name : string; help : string; stable : bool; value : value }

val snapshot : unit -> sample list
(** Merged view of every registered metric, in registration order. *)

val to_json : ?stable_only:bool -> sample list -> string
(** [{"metrics": [{"name": .., "type": .., "stable": .., "value"|
    "buckets"/"count"/"sum": ..}, ..]}], rendered via {!Jsonw}. *)

val json : ?stable_only:bool -> sample list -> Jsonw.t

val to_prometheus : ?stable_only:bool -> sample list -> string
(** Prometheus text exposition; metric names are prefixed [shell_] and
    sanitized to the Prometheus charset (anything outside
    [[a-zA-Z0-9_:]], e.g. dots, becomes [_]), HELP text escapes
    backslash and newline, histogram buckets carry cumulative [le]
    labels at powers of two. An empty sample list renders as [""]. *)

val diffable_counters : ?extra:string list -> sample list -> (string * int) list
(** Snapshot in diffable record form: every stable metric — plus any
    whose name is listed in [extra], for counters that are deterministic
    under a specific capped workload even though registered unstable —
    flattened to name-sorted [(name, value)] pairs. Histograms
    contribute ["name.count"] and ["name.sum"]. This is the byte-
    diffable section of a bench-history record. *)

val write_file : string -> unit
(** Snapshot now and write to a path ([.prom] selects the Prometheus
    exposition, anything else JSON), honoring [SHELL_METRICS_STABLE]. *)

(** {1 Hierarchical spans} *)

type span = {
  name : string;
  seconds : float;
  counters : (string * int) list;  (** in recording order *)
  children : span list;  (** in creation order *)
}

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk under a named span. Spans nest per domain: a span
    opened while another is open on the same domain becomes its child;
    outermost spans are appended to the global root list — unless the
    domain runs under a borrowed {!context}, in which case they attach
    to the lending span. When disabled this is exactly [f ()]. *)

val span_add : string -> int -> unit
(** Attach a named counter to the innermost open span of the calling
    domain, or to the borrowed {!context} parent when no local span is
    open (no-op when disabled or outside both). *)

(** {2 Cross-domain span context}

    A fan-out (the domain pool) would otherwise sever the span tree:
    spans opened inside worker tasks have no open parent on the worker
    and become roots, so the tree's shape depends on the job count.
    The submitting side captures {!context} and runs each task under
    {!with_context}; spans and counters completing at the task's top
    level then attach to the submitter's open span — same tree shape
    at any [SHELL_JOBS]. *)

type context
(** The innermost open span of the calling domain (possibly itself
    borrowed), or nothing. *)

val context : unit -> context
val context_active : context -> bool

val with_context : context -> (unit -> 'a) -> 'a
(** Run [f] with an empty local span stack whose overflow parent is
    [ctx]. The caller's own stack is saved and restored; with an
    inactive context this is exactly [f ()]. *)

val spans : unit -> span list
(** Completed root spans, oldest first. *)

val pp_spans : Format.formatter -> span list -> unit
(** Indented tree, one line per span: wall time and counters. *)

val spans_json : span list -> Jsonw.t

val span_aggregate : span list -> (string * int) list
(** Deterministic span-{e structure} export: sorted [(key, value)]
    pairs where a slash-joined path key (["pipeline/pnr/pnr.attempt"])
    counts invocations of that path and a ["path#counter"] key sums the
    {!span_add} values recorded there. No elapsed times, merged across
    identical paths — byte-diffable across job counts whenever the work
    submitted is deterministic. *)

val reset : unit -> unit
(** Zero every metric and drop completed spans (tests, bench). Leaves
    enablement and the registry itself untouched. *)
