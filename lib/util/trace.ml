type span = {
  pass : string;
  seconds : float;
  cache_hit : bool;
  counters : (string * int) list;
}

let forced = ref None
let set_enabled b = forced := Some b

let enabled () =
  match !forced with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "SHELL_TRACE" with
      | None | Some "" | Some "0" | Some "false" -> false
      | Some _ -> true)

let pp_span ppf s =
  Format.fprintf ppf "%-14s %8.1f ms%s" s.pass (1000.0 *. s.seconds)
    (if s.cache_hit then "  (cached)" else "          ");
  List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) s.counters

let pp ppf spans =
  Format.fprintf ppf "@[<v>";
  List.iter (fun s -> Format.fprintf ppf "  %a@," pp_span s) spans;
  let total = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 spans in
  let hits = List.length (List.filter (fun s -> s.cache_hit) spans) in
  Format.fprintf ppf "  %-14s %8.1f ms  (%d/%d passes cached)@]" "total"
    (1000.0 *. total) hits (List.length spans)

let to_json spans =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",";
      Printf.bprintf buf
        "\n    { \"pass\": \"%s\", \"seconds\": %.6f, \"cache_hit\": %b, \"counters\": {"
        s.pass s.seconds s.cache_hit;
      List.iteri
        (fun j (k, v) ->
          Printf.bprintf buf "%s\"%s\": %d" (if j > 0 then ", " else " ") k v)
        s.counters;
      Buffer.add_string buf " } }")
    spans;
  Buffer.add_string buf "\n  ]";
  Buffer.contents buf
