type span = {
  pass : string;
  seconds : float;
  cache_hit : bool;
  counters : (string * int) list;
}

let forced = ref None
let set_enabled b = forced := Some b

let enabled () =
  match !forced with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "SHELL_TRACE" with
      | None | Some "" | Some "0" | Some "false" -> false
      | Some _ -> true)

let pp_span ppf s =
  Format.fprintf ppf "%-14s %8.1f ms%s" s.pass (1000.0 *. s.seconds)
    (if s.cache_hit then "  (cached)" else "          ");
  List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) s.counters

let pp ppf spans =
  Format.fprintf ppf "@[<v>";
  List.iter (fun s -> Format.fprintf ppf "  %a@," pp_span s) spans;
  let total = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 spans in
  let hits = List.length (List.filter (fun s -> s.cache_hit) spans) in
  Format.fprintf ppf "  %-14s %8.1f ms  (%d/%d passes cached)@]" "total"
    (1000.0 *. total) hits (List.length spans)

let json spans =
  Jsonw.Arr
    (List.map
       (fun s ->
         Jsonw.Obj
           [
             ("pass", Jsonw.Str s.pass);
             ("seconds", Jsonw.float s.seconds);
             ("cache_hit", Jsonw.Bool s.cache_hit);
             ( "counters",
               Jsonw.Obj (List.map (fun (k, v) -> (k, Jsonw.Int v)) s.counters)
             );
           ])
       spans)

let to_json spans = Jsonw.to_string ~indent:2 (json spans)
