type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let float ?(dec = 6) v =
  if Float.is_finite v then Num (Printf.sprintf "%.*f" dec v) else Null

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf s;
  Buffer.contents buf

let add_string_lit buf s =
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"'

let to_buffer ?(indent = 0) buf v =
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Num s -> Buffer.add_string buf s
    | Str s -> add_string_lit buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            add_string_lit buf k;
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?indent v =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf v;
  Buffer.contents buf

(* ---------------- parser ---------------- *)

exception Bad of string

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let of_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && src.[!pos] = c then incr pos
    else raise (Bad (Printf.sprintf "expected %C at %d" c !pos))
  in
  let lit s v =
    if !pos + String.length s <= n && String.sub src !pos (String.length s) = s
    then begin
      pos := !pos + String.length s;
      v
    end
    else raise (Bad (Printf.sprintf "bad literal at %d" !pos))
  in
  let hex4 () =
    if !pos + 4 > n then raise (Bad "truncated \\u escape");
    match int_of_string_opt ("0x" ^ String.sub src !pos 4) with
    | None -> raise (Bad (Printf.sprintf "bad \\u escape at %d" !pos))
    | Some v ->
        pos := !pos + 4;
        v
  in
  (* A \u escape in the surrogate range must be a high surrogate
     immediately followed by an escaped low surrogate; the pair
     combines into one astral code point (one 4-byte UTF-8 sequence,
     not the two 3-byte CESU-8 sequences a naive per-escape encode
     would produce). Lone or out-of-order surrogates are malformed. *)
  let unicode_escape () =
    let u = hex4 () in
    if u >= 0xD800 && u <= 0xDBFF then begin
      if
        !pos + 2 > n || src.[!pos] <> '\\' || src.[!pos + 1] <> 'u'
      then raise (Bad "lone high surrogate");
      pos := !pos + 2;
      let lo = hex4 () in
      if lo < 0xDC00 || lo > 0xDFFF then raise (Bad "lone high surrogate");
      0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
    end
    else if u >= 0xDC00 && u <= 0xDFFF then raise (Bad "lone low surrogate")
    else u
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match src.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          (if !pos >= n then raise (Bad "trailing backslash");
           let c = src.[!pos] in
           incr pos;
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' -> utf8_of_code buf (unicode_escape ())
           | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match src.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise (Bad (Printf.sprintf "bad token at %d" start));
    Num (String.sub src start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> raise (Bad "empty input")
    | Some '"' -> Str (string_body ())
    | Some 'n' -> lit "null" Null
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [ value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            (k, value ())
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> number ()
  in
  match value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at %d" !pos)
      else Ok v
  | exception Bad m -> Error m

(* ---------------- framing ---------------- *)

let default_max_frame = 16 * 1024 * 1024

let frame ?(max_frame = default_max_frame) v =
  let body = to_string v in
  let n = String.length body in
  if n > max_frame then
    invalid_arg
      (Printf.sprintf "Jsonw.frame: %d bytes exceeds max_frame %d" n max_frame);
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.blit_string body 0 b 4 n;
  Bytes.unsafe_to_string b

type framer = {
  fbuf : Buffer.t;
  mutable fpos : int;  (* consumed prefix of [fbuf] *)
  fmax : int;
  mutable ferror : string option;  (* sticky: a bad stream stays bad *)
}

let framer ?(max_frame = default_max_frame) () =
  { fbuf = Buffer.create 256; fpos = 0; fmax = max_frame; ferror = None }

let feed fr b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Jsonw.feed";
  if fr.ferror = None then Buffer.add_subbytes fr.fbuf b off len

let feed_string fr s =
  if fr.ferror = None then Buffer.add_string fr.fbuf s

let next fr =
  match fr.ferror with
  | Some e -> `Error e
  | None ->
      let avail = Buffer.length fr.fbuf - fr.fpos in
      if avail < 4 then `Await
      else begin
        let byte i = Char.code (Buffer.nth fr.fbuf (fr.fpos + i)) in
        let len =
          (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
        in
        if len > fr.fmax then begin
          let e =
            Printf.sprintf "frame of %d bytes exceeds max_frame %d" len fr.fmax
          in
          fr.ferror <- Some e;
          `Error e
        end
        else if avail < 4 + len then `Await
        else begin
          let body = Buffer.sub fr.fbuf (fr.fpos + 4) len in
          fr.fpos <- fr.fpos + 4 + len;
          (* Reclaim the consumed prefix once it dominates the buffer
             so a long-lived connection doesn't grow without bound. *)
          if fr.fpos > 4096 && fr.fpos * 2 > Buffer.length fr.fbuf then begin
            let rest = Buffer.sub fr.fbuf fr.fpos (Buffer.length fr.fbuf - fr.fpos) in
            Buffer.clear fr.fbuf;
            Buffer.add_string fr.fbuf rest;
            fr.fpos <- 0
          end;
          `Frame body
        end
      end
