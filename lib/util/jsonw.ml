type t =
  | Null
  | Bool of bool
  | Int of int
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let float ?(dec = 6) v =
  if Float.is_finite v then Num (Printf.sprintf "%.*f" dec v) else Null

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf s;
  Buffer.contents buf

let add_string_lit buf s =
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"'

let to_buffer ?(indent = 0) buf v =
  let pad depth =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Num s -> Buffer.add_string buf s
    | Str s -> add_string_lit buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            add_string_lit buf k;
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?indent v =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf v;
  Buffer.contents buf

(* ---------------- parser ---------------- *)

exception Bad of string

let utf8_of_code buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let of_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && src.[!pos] = c then incr pos
    else raise (Bad (Printf.sprintf "expected %C at %d" c !pos))
  in
  let lit s v =
    if !pos + String.length s <= n && String.sub src !pos (String.length s) = s
    then begin
      pos := !pos + String.length s;
      v
    end
    else raise (Bad (Printf.sprintf "bad literal at %d" !pos))
  in
  let hex4 () =
    if !pos + 4 > n then raise (Bad "truncated \\u escape");
    let v = int_of_string ("0x" ^ String.sub src !pos 4) in
    pos := !pos + 4;
    v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match src.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          (if !pos >= n then raise (Bad "trailing backslash");
           let c = src.[!pos] in
           incr pos;
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' -> utf8_of_code buf (hex4 ())
           | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match src.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise (Bad (Printf.sprintf "bad token at %d" start));
    Num (String.sub src start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> raise (Bad "empty input")
    | Some '"' -> Str (string_body ())
    | Some 'n' -> lit "null" Null
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [ value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            (k, value ())
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> number ()
  in
  match value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing input at %d" !pos)
      else Ok v
  | exception Bad m -> Error m
