type payload = ..
type payload += Msg of string

type t = {
  pass : string option;
  context : string list;
  payload : payload;
  message : string;
}

exception Error of t

let make ?pass ?(context = []) ?(payload = Msg "") message =
  { pass; context; payload; message }

let msgf ?pass ?payload fmt =
  Format.kasprintf (fun message -> make ?pass ?payload message) fmt

let fail ?pass ?payload message = raise (Error (make ?pass ?payload message))

let failf ?pass ?payload fmt =
  Format.kasprintf (fun message -> fail ?pass ?payload message) fmt

let error ?pass ?payload message =
  Result.Error (make ?pass ?payload message)

let of_exn = function
  | Error d -> Some d
  | Invalid_argument m | Failure m -> Some (make m)
  | _ -> None

let with_context label f =
  try f ()
  with e -> (
    match of_exn e with
    | Some d -> raise (Error { d with context = label :: d.context })
    | None -> raise e)

let in_pass name f =
  try f ()
  with e -> (
    match of_exn e with
    | Some d ->
        let pass = match d.pass with Some _ as p -> p | None -> Some name in
        raise (Error { d with pass })
    | None -> raise e)

(* printers for extension payloads live with their definitions;
   most-recent registration wins *)
let printers : (payload -> string option) list ref = ref []
let register_printer p = printers := p :: !printers

let payload_string p =
  match p with
  | Msg "" -> None
  | Msg m -> Some m
  | _ ->
      let rec go = function
        | [] -> None
        | pr :: tl -> ( match pr p with Some _ as s -> s | None -> go tl)
      in
      go !printers

let pp ppf d =
  (match d.pass with Some p -> Format.fprintf ppf "%s: " p | None -> ());
  List.iter (fun c -> Format.fprintf ppf "%s: " c) d.context;
  Format.pp_print_string ppf d.message;
  match payload_string d.payload with
  | Some s when s <> d.message -> Format.fprintf ppf " [%s]" s
  | Some _ | None -> ()

let to_string d = Format.asprintf "%a" pp d

let () =
  Printexc.register_printer (function
    | Error d -> Some ("Shell_util.Diag.Error: " ^ to_string d)
    | _ -> None)
