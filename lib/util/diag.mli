(** Structured diagnostics for the SheLL flow.

    A diagnostic carries {e where} a failure happened (the pipeline
    pass and a stack of context labels) alongside {e what} happened:
    a human-readable message plus an optional typed payload that
    callers can match on (e.g. the PnR fit-check shortage). The
    payload type is extensible so downstream libraries — fabric, PnR —
    can attach their own typed data without [shell_util] depending on
    them.

    The flow's legacy error styles ([failwith], [invalid_arg],
    [(unit, string) result], [`Msg]) funnel into this one type so a
    failing run can report which pass failed, with every artifact
    produced before it still available to the caller. *)

type payload = ..
(** Typed machine-readable detail. Libraries extend this; register a
    printer with {!register_printer} so [to_string] can render it. *)

type payload += Msg of string  (** no structured detail *)

type t = {
  pass : string option;  (** pipeline pass that failed, when known *)
  context : string list;  (** outermost label first *)
  payload : payload;
  message : string;
}

exception Error of t

val make : ?pass:string -> ?context:string list -> ?payload:payload -> string -> t

val msgf :
  ?pass:string ->
  ?payload:payload ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** Format-string constructor. *)

val fail : ?pass:string -> ?payload:payload -> string -> 'a
(** Raise {!Error}. *)

val failf :
  ?pass:string ->
  ?payload:payload ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a

val error : ?pass:string -> ?payload:payload -> string -> ('a, t) result

val with_context : string -> (unit -> 'a) -> 'a
(** Run a thunk; an {!Error} escaping it is re-raised with the label
    pushed onto its context stack. [Invalid_argument] and [Failure]
    are converted to diagnostics on the way (the migration path for
    legacy sites not yet speaking [Diag]). *)

val in_pass : string -> (unit -> 'a) -> 'a
(** Like {!with_context}, and additionally stamps the pass name onto
    escaping diagnostics that do not carry one yet. *)

val of_exn : exn -> t option
(** [Some] for {!Error}, [Invalid_argument] and [Failure]. *)

val register_printer : (payload -> string option) -> unit
(** Printers are tried most-recently-registered first. *)

val payload_string : payload -> string option
(** Rendered typed payload, when a registered printer recognizes it. *)

val to_string : t -> string
(** ["pass: ctx1: ctx2: message [payload]"]. *)

val pp : Format.formatter -> t -> unit
