(** Fixed-size domain pool for the evaluation engine.

    The paper's evaluation grid — (benchmark x case) locking flows,
    SAT-attack runs, per-source Brandes passes, GA generations — is
    embarrassingly parallel. This pool runs such task batches on OCaml
    5 domains under a {e deterministic contract}:

    - results are collected into the output by input index, never by
      completion order;
    - reductions ([map_reduce]) run sequentially on the caller in input
      order once all mapped values exist, so floating-point sums are
      bit-identical to the sequential fold;
    - stochastic tasks derive their randomness from {!task_rng}, which
      seeds from the task index alone;
    - if several tasks raise, the exception of the {e lowest} task
      index is re-raised (the one a sequential run would have hit
      first);
    - [jobs = 1] bypasses the pool entirely and runs in the caller.

    Consequently every parallel entry point in the code base produces
    byte-identical output at any job count, and the paper tables stay
    reproducible.

    The pool is a process-wide singleton of long-lived worker domains
    (created lazily, grown on demand, joined at exit). Tasks submitted
    from inside a pool task run sequentially in the submitting domain —
    nested parallelism degrades gracefully instead of deadlocking. *)

val default_jobs : unit -> int
(** Job count used when [?jobs] is omitted: the [SHELL_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]; clamped to [1, 64]. *)

val set_default_jobs : int -> unit
(** Override the default at runtime (the bench harness uses this to
    time the same workload at several job counts in one process). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f arr] is [Array.map f arr], evaluated on up to [jobs]
    domains. [f] must not depend on evaluation order. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of [map] (input order preserved). *)

val map_reduce :
  ?jobs:int ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Parallel map, then a sequential left fold over the mapped values in
    input order — the reduction order is fixed, so non-associative
    reductions (floats!) match the sequential run exactly. *)

val iter_chunks : ?jobs:int -> ?chunk:int -> (int -> int -> unit) -> int -> unit
(** [iter_chunks f n] partitions [0, n) into contiguous chunks and
    calls [f lo hi] (half-open) for each, in parallel. [chunk] defaults
    to [max 1 (n / (4 * jobs))]. The [f] calls must write to disjoint
    state (e.g. distinct array slices). *)

val count_batch : int -> unit
(** Record [n] tasks (one batch, when [n > 0]) in the pool's stable
    [pool_tasks]/[pool_batches] telemetry without running anything.
    Callers that keep a private sequential fallback (rather than
    letting [map]'s own [jobs = 1] bypass run) call this on that path
    so the totals stay a pure function of the work submitted —
    identical at any job count. *)

val task_rng : seed:int -> int -> Rng.t
(** [task_rng ~seed i] is the RNG for task [i] of a batch: a splitmix
    stream derived from [(seed, i)] only, independent of job count and
    scheduling. *)

val inside_task : unit -> bool
(** True while executing on a pool worker (or inside the caller's share
    of a batch); parallel entry points use this to fall back to their
    sequential path. *)
