(* Splitmix64: fast, high-quality, trivially seedable. The golden-gamma
   constant and the mixing rounds follow Steele, Lea & Flood (OOPSLA'14). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let child t i =
  if i < 0 then invalid_arg "Rng.child: negative index";
  (* Perturb the current state by a per-index multiple of the gamma and
     re-mix; the parent's own stream is left untouched. *)
  let s = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  { state = mix s }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

(* Keep 62 bits so the value stays non-negative in OCaml's 63-bit int;
   on 64-bit OCaml [max_int] is exactly 2^62 - 1, the largest raw draw. *)
let bits62_max = max_int

let int t bound =
  assert (bound > 0);
  (* Rejection sampling: [raw mod bound] alone over-weights the low
     residues whenever [bound] does not divide 2^62. Redraw in the
     (vanishingly rare for small bounds) tail where the last, partial
     block of residues starts. *)
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let r = raw mod bound in
    if raw - r > bits62_max - bound + 1 then draw () else r
  in
  draw ()

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

(* Packed-vector helpers for the word-level simulator. The contract is
   stream compatibility with the scalar path: bit [i] of [word t n] is
   exactly the [i]-th [bool t] draw, so code that switches between
   scalar and packed generation consumes the identical RNG stream and
   stays byte-reproducible at any SHELL_JOBS. *)
let word t n =
  if n < 0 || n > Sys.int_size then invalid_arg "Rng.word: bad width";
  let w = ref 0 in
  for i = 0 to n - 1 do
    if bool t then w := !w lor (1 lsl i)
  done;
  !w

let vectors_packed ?(lanes = Sys.int_size) t ~vectors ~bits =
  if lanes < 1 || lanes > Sys.int_size then
    invalid_arg "Rng.vectors_packed: bad lane count";
  if vectors < 0 || bits < 0 then invalid_arg "Rng.vectors_packed";
  let n_chunks = (vectors + lanes - 1) / lanes in
  let chunks =
    Array.init n_chunks (fun _ -> Array.make bits 0)
  in
  (* Vector-major draw order: vector v's bits are drawn consecutively,
     exactly as a scalar [Array.init bits (fun _ -> bool t)] per vector
     would. Lane [v mod lanes] of chunk [v / lanes] holds vector v. *)
  for v = 0 to vectors - 1 do
    let words = chunks.(v / lanes) in
    let lane = v mod lanes in
    for i = 0 to bits - 1 do
      if bool t then words.(i) <- words.(i) lor (1 lsl lane)
    done
  done;
  chunks

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let sample t n arr =
  assert (n <= Array.length arr);
  let pool = Array.copy arr in
  shuffle t pool;
  Array.sub pool 0 n
