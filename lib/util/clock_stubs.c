/* Monotonic clock for duration math.
 *
 * OCaml 5.1's bundled unix library does not expose clock_gettime, so
 * the monotonic source is a tiny C stub.  CLOCK_MONOTONIC is immune
 * to NTP steps and manual date changes; where it is unavailable the
 * stub degrades to gettimeofday, which preserves behaviour (if not
 * the monotonicity guarantee) rather than failing to load. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value shell_clock_monotonic_time(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
